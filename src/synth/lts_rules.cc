#include "src/synth/lts_rules.h"

#include <array>
#include <cctype>

namespace aud {

namespace {

bool IsVowelChar(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' || c == 'y';
}

bool IsConsonantChar(char c) { return std::isalpha(static_cast<unsigned char>(c)) && !IsVowelChar(c); }

bool IsFrontVowel(char c) { return c == 'e' || c == 'i' || c == 'y'; }

// One NRL-style rule: when `target` occurs with `left` context before it
// and `right` context after it, emit `phonemes`. Context pattern atoms:
//   ' '  word boundary
//   '#'  one or more vowels
//   ':'  zero or more consonants
//   '^'  exactly one consonant
//   '+'  one front vowel (e, i, y)
//   other characters match literally.
struct LtsRule {
  std::string_view left;
  std::string_view target;
  std::string_view right;
  std::string_view phonemes;
};

// Matches `pattern` against the text to the left of position `pos`
// (pattern is applied right-to-left).
bool MatchLeft(std::string_view word, size_t pos, std::string_view pattern) {
  int64_t wi = static_cast<int64_t>(pos) - 1;
  for (int64_t pi = static_cast<int64_t>(pattern.size()) - 1; pi >= 0; --pi) {
    char pc = pattern[static_cast<size_t>(pi)];
    switch (pc) {
      case ' ':
        if (wi >= 0) {
          return false;
        }
        break;
      case '#': {
        if (wi < 0 || !IsVowelChar(word[static_cast<size_t>(wi)])) {
          return false;
        }
        while (wi >= 0 && IsVowelChar(word[static_cast<size_t>(wi)])) {
          --wi;
        }
        break;
      }
      case ':':
        while (wi >= 0 && IsConsonantChar(word[static_cast<size_t>(wi)])) {
          --wi;
        }
        break;
      case '^':
        if (wi < 0 || !IsConsonantChar(word[static_cast<size_t>(wi)])) {
          return false;
        }
        --wi;
        break;
      case '+':
        if (wi < 0 || !IsFrontVowel(word[static_cast<size_t>(wi)])) {
          return false;
        }
        --wi;
        break;
      default:
        if (wi < 0 || word[static_cast<size_t>(wi)] != pc) {
          return false;
        }
        --wi;
        break;
    }
  }
  return true;
}

// Matches `pattern` against the text starting at `pos` (left-to-right).
bool MatchRight(std::string_view word, size_t pos, std::string_view pattern) {
  size_t wi = pos;
  for (char pc : pattern) {
    switch (pc) {
      case ' ':
        if (wi < word.size()) {
          return false;
        }
        break;
      case '#': {
        if (wi >= word.size() || !IsVowelChar(word[wi])) {
          return false;
        }
        while (wi < word.size() && IsVowelChar(word[wi])) {
          ++wi;
        }
        break;
      }
      case ':':
        while (wi < word.size() && IsConsonantChar(word[wi])) {
          ++wi;
        }
        break;
      case '^':
        if (wi >= word.size() || !IsConsonantChar(word[wi])) {
          return false;
        }
        ++wi;
        break;
      case '+':
        if (wi >= word.size() || !IsFrontVowel(word[wi])) {
          return false;
        }
        ++wi;
        break;
      case '%': {
        // Common suffixes: -e, -es, -ed, -er, -ely, -ing.
        std::string_view rest = word.substr(wi);
        if (rest.empty()) {
          return false;
        }
        static constexpr std::array<std::string_view, 6> kSuffixes = {"ing", "ely", "ed",
                                                                      "es", "er", "e"};
        bool matched = false;
        for (std::string_view s : kSuffixes) {
          if (rest.substr(0, s.size()) == s) {
            wi += s.size();
            matched = true;
            break;
          }
        }
        if (!matched) {
          return false;
        }
        break;
      }
      default:
        if (wi >= word.size() || word[wi] != pc) {
          return false;
        }
        ++wi;
        break;
    }
  }
  return true;
}

// The rule table, ordered most-specific first within each target letter.
// Derived in spirit from the NRL text-to-phoneme rules.
const std::vector<LtsRule>& Rules() {
  static const std::vector<LtsRule> kRules = {
      // a
      {" ", "are", " ", "AA R"},
      {" ", "ar", "o", "AH R"},
      {"", "ar", "#", "EH R"},
      {"^", "as", "#", "EY S"},
      {"", "a", "wa", "AH"},
      {"", "aw", "", "AO"},
      {" :", "any", "", "EH N IY"},
      {"", "a", "^+#", "EY"},
      {"", "ally", "", "AH L IY"},
      {" ", "al", "#", "AH L"},
      {"", "again", "", "AH G EH N"},
      {"^", "ag", "e", "EY JH"},
      {"", "a", "^%", "EY"},
      {"", "a", "^e ", "EY"},
      {"", "a", "^^", "AE"},
      {"", "ai", "", "EY"},
      {"", "ay", "", "EY"},
      {"", "au", "", "AO"},
      {" :", "al", "^", "AO L"},
      {"", "a", "", "AE"},
      // b
      {"", "bb", "", "B"},
      {"", "b", "", "B"},
      // c
      {"", "ch", "^", "K"},
      {"^e", "ch", "", "K"},
      {"", "ch", "", "CH"},
      {" s", "ci", "#", "S AY"},
      {"", "ci", "a", "SH"},
      {"", "ci", "o", "SH"},
      {"", "c", "+", "S"},
      {"", "ck", "", "K"},
      {"", "cc", "+", "K S"},
      {"", "c", "", "K"},
      // d
      {"", "dd", "", "D"},
      {"#:", "ded", " ", "D IH D"},
      {".e", "d", " ", "D"},
      {"", "d", "", "D"},
      // e
      {"#:", "e", " ", ""},   // silent final e
      {"+:", "e", " ", ""},
      {" :", "e", " ", "IY"},
      {"#", "ed", " ", "D"},
      {"", "ev", "er", "EH V"},
      {"", "e", "^%", "IY"},
      {"", "eri", "#", "IY R IY"},
      {"#:", "er", "#", "ER"},
      {"", "er", "#", "EH R"},
      {"", "er", "", "ER"},
      {" ", "even", "", "IY V EH N"},
      {"", "ew", "", "UW"},
      {"", "e", "w", "UW"},
      {"", "ee", "", "IY"},
      {"", "earn", "", "ER N"},
      {" ", "ear", "^", "ER"},
      {"", "ea", "", "IY"},
      {"", "eigh", "", "EY"},
      {"", "ei", "", "IY"},
      {" ", "eye", "", "AY"},
      {"", "ey", "", "IY"},
      {"", "eu", "", "Y UW"},
      {"", "e", "", "EH"},
      // f
      {"", "ff", "", "F"},
      {"", "f", "", "F"},
      // g
      {"", "gg", "", "G"},
      {" ", "g", "i^", "G"},
      {"", "ge", "t", "G EH"},
      {"su", "gges", "", "G JH EH S"},
      {"", "g", "+", "JH"},
      {"", "gh", "", ""},
      {"", "g", "", "G"},
      // h
      {" ", "hav", "", "HH AE V"},
      {" ", "here", "", "HH IY R"},
      {" ", "hour", "", "AW ER"},
      {"", "how", "", "HH AW"},
      {"", "h", "#", "HH"},
      {"", "h", "", ""},
      // i
      {" ", "in", "", "IH N"},
      {" ", "i", " ", "AY"},
      {"", "in", "d", "AY N"},
      {"", "ier", "", "IY ER"},
      {"", "igh", "", "AY"},
      {"", "ild", "", "AY L D"},
      {"", "ign", " ", "AY N"},
      {"", "ign", "^", "AY N"},
      {"", "ique", "", "IY K"},
      {"", "i", "^+:#", "IH"},
      {"", "i", "%", "AY"},
      {"", "i", "^e ", "AY"},
      {"", "io", "n", "Y AH"},
      {"", "i", "o", "IY"},
      {"", "i", "", "IH"},
      // j
      {"", "j", "", "JH"},
      // k
      {" ", "k", "n", ""},
      {"", "k", "", "K"},
      // l
      {"", "lo", "c#", "L OW"},
      {"l", "l", "", ""},
      {"", "l", "", "L"},
      // m
      {"", "mm", "", "M"},
      {"", "m", "", "M"},
      // n
      {"e", "ng", "+", "N JH"},
      {"", "ng", "", "NG"},
      {"", "nn", "", "N"},
      {"", "n", "", "N"},
      // o
      {"", "of", " ", "AH V"},
      {"", "orough", "", "ER OW"},
      {"", "or", " ", "ER"},
      {"", "or", "", "AO R"},
      {" ", "one", "", "W AH N"},
      {"", "ow", " ", "OW"},
      {"", "ow", "", "AW"},
      {" ", "over", "", "OW V ER"},
      {"", "ov", "", "AH V"},
      {"", "o", "^%", "OW"},
      {"", "o", "^e ", "OW"},
      {"", "oo", "k", "UH"},
      {"", "oo", "d", "UH"},
      {"", "oo", "", "UW"},
      {"", "o", "e ", "OW"},
      {"", "o", " ", "OW"},
      {"", "ou", "s", "AH"},
      {"", "ought", "", "AO T"},
      {"", "ough", "", "AH F"},
      {"", "ou", "", "AW"},
      {"", "oy", "", "OY"},
      {"", "oi", "", "OY"},
      {"", "o", "", "AA"},
      // p
      {"", "ph", "", "F"},
      {"", "pp", "", "P"},
      {"", "p", "", "P"},
      // q
      {"", "qu", "", "K W"},
      {"", "q", "", "K"},
      // r
      {"", "rr", "", "R"},
      {"", "r", "", "R"},
      // s
      {"", "sh", "", "SH"},
      {"#", "sion", "", "ZH AH N"},
      {"", "ss", "", "S"},
      {"#", "s", "#", "Z"},
      {".", "s", " ", "Z"},
      {"#:", "s", " ", "Z"},
      {"", "sc", "+", "S"},
      {"", "s", "", "S"},
      // t
      {" ", "the", " ", "DH AH"},
      {"", "to", " ", "T UW"},
      {"", "that", " ", "DH AE T"},
      {" ", "this", " ", "DH IH S"},
      {" ", "they", "", "DH EY"},
      {" ", "there", "", "DH EH R"},
      {"", "ther", "", "DH ER"},
      {"#", "tion", "", "SH AH N"},
      {"", "tch", "", "CH"},
      {"", "tt", "", "T"},
      {"", "t", "", "T"},
      // u
      {" ", "un", "i", "Y UW N"},
      {" ", "un", "", "AH N"},
      {"", "u", "^%", "UW"},
      {"", "u", "^e ", "UW"},
      {"", "u", "^^", "AH"},
      {"", "u", "", "AH"},
      // v
      {"", "v", "", "V"},
      // w
      {" ", "wh", "o", "HH"},
      {"", "wh", "", "W"},
      {"", "wr", "", "R"},
      {"", "w", "", "W"},
      // x
      {" ", "x", "", "Z"},
      {"", "x", "", "K S"},
      // y
      {"", "young", "", "Y AH NG"},
      {" ", "you", "", "Y UW"},
      {" ", "yes", "", "Y EH S"},
      {" ", "y", "", "Y"},
      {"#:", "y", " ", "IY"},
      {"#:", "y", "i", "IY"},
      {" :", "y", " ", "AY"},
      {" :", "y", "#", "AY"},
      {" :", "y", "^+:#", "IH"},
      {" :", "y", "^#", "AY"},
      {"", "y", "", "IH"},
      // z
      {"", "zz", "", "Z"},
      {"", "z", "", "Z"},
  };
  return kRules;
}

std::string ToLowerWord(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

std::string_view DigitPhonemes(char digit) {
  switch (digit) {
    case '0':
      return "Z IY R OW";
    case '1':
      return "W AH N";
    case '2':
      return "T UW";
    case '3':
      return "TH R IY";
    case '4':
      return "F AO R";
    case '5':
      return "F AY V";
    case '6':
      return "S IH K S";
    case '7':
      return "S EH V AH N";
    case '8':
      return "EY T";
    case '9':
      return "N AY N";
  }
  return "";
}

void LetterToSound::AddException(const std::string& word, const std::string& phonemes) {
  exceptions_[ToLowerWord(word)] = phonemes;
}

void LetterToSound::ClearExceptions() { exceptions_.clear(); }

std::string LetterToSound::ConvertWord(std::string_view word) const {
  std::string lower = ToLowerWord(word);
  if (lower.empty()) {
    return "";
  }
  auto it = exceptions_.find(lower);
  if (it != exceptions_.end()) {
    return it->second;
  }

  std::string out;
  size_t pos = 0;
  while (pos < lower.size()) {
    bool matched = false;
    for (const LtsRule& rule : Rules()) {
      if (rule.target.empty() || lower.compare(pos, rule.target.size(), rule.target) != 0) {
        continue;
      }
      if (!MatchLeft(lower, pos, rule.left)) {
        continue;
      }
      if (!MatchRight(lower, pos + rule.target.size(), rule.right)) {
        continue;
      }
      if (!rule.phonemes.empty()) {
        if (!out.empty()) {
          out += ' ';
        }
        out += rule.phonemes;
      }
      pos += rule.target.size();
      matched = true;
      break;
    }
    if (!matched) {
      // No rule (digits/punctuation inside a word): skip the character.
      ++pos;
    }
  }
  return out;
}

std::string LetterToSound::ConvertText(std::string_view text) const {
  std::string out;
  auto append = [&out](std::string_view phonemes) {
    if (phonemes.empty()) {
      return;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += phonemes;
  };

  std::string word;
  auto flush_word = [&] {
    if (!word.empty()) {
      append(ConvertWord(word));
      word.clear();
    }
  };

  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '\'') {
      word.push_back(c);
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      flush_word();
      append(DigitPhonemes(c));
      append("SIL");
    } else if (c == ',' || c == ';' || c == ':') {
      flush_word();
      append("SIL");
    } else if (c == '.' || c == '!' || c == '?') {
      flush_word();
      append("PAU");
    } else {
      // Whitespace and everything else: word separator with a short gap.
      flush_word();
      append("SIL");
    }
  }
  flush_word();
  return out;
}

}  // namespace aud
