// The vocal tract model: renders a phoneme sequence as a waveform using a
// source-filter formant synthesizer — an impulse-train or noise source fed
// through parallel second-order resonators whose center frequencies glide
// between phoneme targets. This is the second synthesis stage the paper
// assigns to "a digital signal processor"; here it is plain C++.

#ifndef SRC_SYNTH_FORMANT_H_
#define SRC_SYNTH_FORMANT_H_

#include <cstdint>
#include <vector>

#include "src/common/sample.h"
#include "src/synth/phonemes.h"

namespace aud {

// Vocal-tract and prosody parameters (the protocol's SetValues command
// exposes these, section 5.1).
struct VoiceParameters {
  double pitch_hz = 110.0;       // Glottal pulse rate.
  double speaking_rate = 1.0;    // >1 faster, <1 slower.
  double volume = 0.8;           // 0..1 output scale.
  double formant_shift = 1.0;    // Scales all formants (vocal-tract length).
};

// One second-order resonator (digital formant filter).
class Resonator {
 public:
  // Sets center frequency and bandwidth for the given sample rate.
  void Tune(double frequency_hz, double bandwidth_hz, uint32_t sample_rate_hz);

  double Process(double x);

  void Reset();

 private:
  double a_ = 0.0;
  double b_ = 0.0;
  double gain_ = 1.0;
  double y1_ = 0.0;
  double y2_ = 0.0;
};

// Renders phoneme sequences into PCM.
class FormantSynthesizer {
 public:
  explicit FormantSynthesizer(uint32_t sample_rate_hz);

  // Renders `phonemes` with `params`, appending samples to `out`.
  void Render(const std::vector<const Phoneme*>& phonemes, const VoiceParameters& params,
              std::vector<Sample>* out);

  uint32_t sample_rate_hz() const { return rate_; }

 private:
  void RenderTransition(const Phoneme& from, const Phoneme& to, size_t frames,
                        const VoiceParameters& params, std::vector<Sample>* out);

  uint32_t rate_;
  Resonator r1_;
  Resonator r2_;
  Resonator r3_;
  double glottal_phase_ = 0.0;
  uint32_t noise_state_ = 0x2545F491;
};

}  // namespace aud

#endif  // SRC_SYNTH_FORMANT_H_
