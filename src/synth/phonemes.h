// Phoneme inventory and acoustic parameters for the formant synthesizer.
// The paper (section 1.1) describes synthesis as two steps: text to
// phonetic units (general-purpose processor) and a vocal tract model that
// turns units into a waveform (traditionally a DSP). This table is the
// interface between our two steps: each phoneme carries formant targets
// and source characteristics for the vocal tract model.

#ifndef SRC_SYNTH_PHONEMES_H_
#define SRC_SYNTH_PHONEMES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aud {

// Source excitation type for a phoneme.
enum class PhonationType : uint8_t {
  kVoiced = 0,     // Periodic glottal pulses (vowels, nasals, liquids).
  kUnvoiced = 1,   // Noise (s, f, sh...).
  kMixed = 2,      // Voiced + noise (z, v...).
  kStop = 3,       // Silence gap then burst (p, t, k, b, d, g).
  kSilence = 4,    // Word/phrase pauses.
};

// One phoneme's synthesis recipe (ARPAbet-style symbol).
struct Phoneme {
  std::string_view symbol;
  PhonationType phonation;
  // Formant targets in Hz (0 = unused resonator).
  double f1;
  double f2;
  double f3;
  // Nominal duration in milliseconds at speaking rate 1.0.
  int duration_ms;
  // Relative amplitude 0..1.
  double amplitude;
};

// Looks up a phoneme by ARPAbet symbol (upper case, e.g. "AA", "T").
// Returns nullptr for unknown symbols.
const Phoneme* FindPhoneme(std::string_view symbol);

// The full inventory (for tests and enumeration).
const std::vector<Phoneme>& PhonemeInventory();

// Parses a space-separated phoneme string ("HH AH L OW") into the table
// entries, skipping unknown symbols.
std::vector<const Phoneme*> ParsePhonemeString(std::string_view phonemes);

}  // namespace aud

#endif  // SRC_SYNTH_PHONEMES_H_
