#include "src/toolkit/soundviewer.h"

namespace aud {

Soundviewer::Soundviewer(uint32_t sample_rate_hz, Options options)
    : rate_(sample_rate_hz), options_(options) {}

Soundviewer::Soundviewer(uint32_t sample_rate_hz)
    : Soundviewer(sample_rate_hz, Options{}) {}

bool Soundviewer::OnSyncMark(const SyncMarkArgs& mark) {
  position_ = mark.position_samples;
  total_ = mark.total_samples;
  int cells = total_ == 0 ? 0
                          : static_cast<int>(position_ * static_cast<uint64_t>(
                                                             options_.width_chars) /
                                             total_);
  bool changed = cells != last_cells_;
  last_cells_ = cells;
  return changed;
}

void Soundviewer::SetSelection(uint64_t begin, uint64_t end) {
  selection_begin_ = begin;
  selection_end_ = end;
}

void Soundviewer::ClearSelection() {
  selection_begin_ = 0;
  selection_end_ = 0;
}

double Soundviewer::fraction() const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(position_) / static_cast<double>(total_);
}

std::string Soundviewer::Render() const {
  std::string bar(static_cast<size_t>(options_.width_chars), '-');
  if (total_ > 0) {
    auto cell_of = [&](uint64_t sample) {
      uint64_t cell = sample * static_cast<uint64_t>(options_.width_chars) / total_;
      return static_cast<size_t>(
          cell >= static_cast<uint64_t>(options_.width_chars)
              ? static_cast<uint64_t>(options_.width_chars) - 1
              : cell);
    };
    size_t played = cell_of(position_);
    for (size_t i = 0; i < played; ++i) {
      bar[i] = '#';
    }
    if (selection_end_ > selection_begin_) {
      size_t from = cell_of(selection_begin_);
      size_t to = cell_of(selection_end_);
      for (size_t i = from; i <= to && i < bar.size(); ++i) {
        bar[i] = bar[i] == '#' ? '%' : '=';
      }
    }
    // Tick marks.
    uint64_t tick_samples =
        static_cast<uint64_t>(options_.tick_seconds * static_cast<double>(rate_));
    if (tick_samples > 0) {
      for (uint64_t s = tick_samples; s < total_; s += tick_samples) {
        bar[cell_of(s)] = '|';
      }
    }
  }
  return "[" + bar + "]";
}

}  // namespace aud
