#include "src/toolkit/tone_menu.h"

namespace aud {

ToneMenu::ToneMenu(AudioToolkit* toolkit, ResourceId loud, ResourceId telephone,
                   ResourceId player)
    : toolkit_(toolkit), loud_(loud), telephone_(telephone), player_(player) {}

std::optional<std::string> ToneMenu::Run(ResourceId prompt_sound, const Options& options) {
  AudioConnection* conn = toolkit_->connection();

  bool prompting = false;
  uint32_t prompt_tag = 0;
  if (prompt_sound != kNoResource) {
    prompt_tag = next_tag_++;
    conn->Enqueue(loud_, {PlayCommand(player_, prompt_sound, prompt_tag)});
    conn->StartQueue(loud_);
    prompting = true;
  }

  std::string digits;
  auto take = [&](char digit) {
    if (prompting) {
      // Barge-in: stop the prompt the moment a digit arrives.
      conn->Immediate(loud_, StopCommand(player_));
      prompting = false;
    }
    if (options.hash_terminates && digit == '#') {
      return true;
    }
    digits.push_back(digit);
    return static_cast<int>(digits.size()) >= options.max_digits;
  };

  // Consume type-ahead first.
  while (!buffered_.empty()) {
    char digit = buffered_.front();
    buffered_.erase(buffered_.begin());
    if (take(digit)) {
      return digits;
    }
  }

  bool hung_up = false;
  while (!hung_up) {
    auto event = toolkit_->WaitFor(
        [&](const EventMessage& e) {
          return e.type == EventType::kDtmfReceived || e.type == EventType::kCallProgress;
        },
        options.digit_timeout_ms);
    if (!event) {
      return digits.empty() ? std::nullopt : std::make_optional(digits);
    }
    if (event->type == EventType::kCallProgress) {
      CallProgressArgs progress = CallProgressArgs::Decode(event->args);
      if (progress.state == CallState::kHungUp || progress.state == CallState::kIdle) {
        hung_up = true;
      }
      continue;
    }
    char digit = DtmfReceivedArgs::Decode(event->args).digit;
    if (take(digit)) {
      return digits;
    }
  }
  return std::nullopt;
}

}  // namespace aud
