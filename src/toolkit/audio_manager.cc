#include "src/toolkit/audio_manager.h"

#include <algorithm>

namespace aud {

AudioManager::AudioManager(AudioConnection* connection, Policy policy)
    : conn_(connection), policy_(policy) {
  conn_->SetRedirect(true);
}

AudioManager::~AudioManager() {
  if (conn_->connected()) {
    conn_->SetRedirect(false);
  }
}

int AudioManager::Pump() {
  int handled = 0;
  EventMessage event;
  while (conn_->PollEvent(&event)) {
    if (event.type == EventType::kMapRequest) {
      MapRequestArgs args = MapRequestArgs::Decode(event.args);
      HandleMapRequest(args.loud);
      ++handled;
    } else if (event.type == EventType::kRestackRequest) {
      MapRequestArgs args = MapRequestArgs::Decode(event.args);
      HandleRestackRequest(args.loud, args.raise != 0);
      ++handled;
    }
  }
  return handled;
}

void AudioManager::HandleMapRequest(ResourceId loud) {
  bool allow;
  switch (policy_) {
    case Policy::kAllowAll:
    case Policy::kFocusFollowsMap:
      allow = true;
      break;
    case Policy::kDenyAll:
      allow = false;
      break;
  }
  if (filter_) {
    allow = filter_(loud);
  }
  if (!allow) {
    return;
  }
  if (policy_ == Policy::kFocusFollowsMap) {
    // Push everything we previously admitted below the newcomer.
    for (ResourceId other : managed_) {
      conn_->LowerLoud(other, /*override_redirect=*/true);
    }
  }
  conn_->MapLoud(loud, /*override_redirect=*/true);
  std::erase(managed_, loud);
  managed_.insert(managed_.begin(), loud);
}

void AudioManager::HandleRestackRequest(ResourceId loud, bool raise) {
  if (policy_ == Policy::kDenyAll) {
    return;
  }
  if (raise) {
    conn_->RaiseLoud(loud, /*override_redirect=*/true);
    std::erase(managed_, loud);
    managed_.insert(managed_.begin(), loud);
  } else {
    conn_->LowerLoud(loud, /*override_redirect=*/true);
  }
}

}  // namespace aud
