#include "src/toolkit/toolkit.h"

#include <chrono>
#include <thread>

#include "src/dsp/encoding.h"

namespace aud {

AudioToolkit::AudioToolkit(AudioConnection* connection) : conn_(connection) {}

void AudioToolkit::Pump() {
  if (pump_) {
    pump_();
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

ResourceId AudioToolkit::UploadSound(std::span<const Sample> samples, AudioFormat format) {
  ResourceId sound = conn_->CreateSound(format);
  StreamEncoder encoder(format.encoding);
  std::vector<uint8_t> encoded;
  encoder.Encode(samples, &encoded);
  conn_->WriteSound(sound, 0, encoded);
  return sound;
}

Result<std::vector<Sample>> AudioToolkit::DownloadSound(ResourceId sound) {
  auto info = conn_->QuerySound(sound);
  if (!info.ok()) {
    return info.status();
  }
  auto data = conn_->ReadSound(sound, 0, static_cast<uint32_t>(info.value().size_bytes));
  if (!data.ok()) {
    return data.status();
  }
  StreamDecoder decoder(info.value().format.encoding);
  std::vector<Sample> samples;
  decoder.Decode(data.value(), &samples);
  return samples;
}

std::optional<EventMessage> AudioToolkit::WaitFor(
    const std::function<bool(const EventMessage&)>& pred, int timeout_ms,
    const std::function<void(const EventMessage&)>& side_channel) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    EventMessage event;
    while (conn_->PollEvent(&event)) {
      if (pred(event)) {
        return event;
      }
      if (side_channel) {
        side_channel(event);
      }
    }
    if (!conn_->connected()) {
      return std::nullopt;
    }
    Pump();
  }
  return std::nullopt;
}

bool AudioToolkit::WaitCommandDone(uint32_t tag, int timeout_ms) {
  return WaitFor(
             [tag](const EventMessage& event) {
               if (event.type != EventType::kCommandDone) {
                 return false;
               }
               return CommandDoneArgs::Decode(event.args).tag == tag;
             },
             timeout_ms)
      .has_value();
}

AudioToolkit::PlaybackChain AudioToolkit::BuildPlaybackChain(const AttrList& output_attrs) {
  PlaybackChain chain;
  chain.loud = conn_->CreateLoud(kNoResource, {});
  chain.player = conn_->CreateDevice(chain.loud, DeviceClass::kPlayer, {});
  chain.output = conn_->CreateDevice(chain.loud, DeviceClass::kOutput, output_attrs);
  conn_->CreateWire(chain.player, 0, chain.output, 0);
  conn_->SelectEvents(chain.loud, kQueueEvents | kLifecycleEvents | kSyncEvents);
  conn_->MapLoud(chain.loud);
  return chain;
}

AudioToolkit::RecordChain AudioToolkit::BuildRecordChain(const AttrList& input_attrs) {
  RecordChain chain;
  chain.loud = conn_->CreateLoud(kNoResource, {});
  chain.input = conn_->CreateDevice(chain.loud, DeviceClass::kInput, input_attrs);
  chain.recorder = conn_->CreateDevice(chain.loud, DeviceClass::kRecorder, {});
  conn_->CreateWire(chain.input, 0, chain.recorder, 0);
  conn_->SelectEvents(chain.loud, kQueueEvents | kLifecycleEvents | kRecorderEvents);
  conn_->MapLoud(chain.loud);
  return chain;
}

AudioToolkit::AnsweringChain AudioToolkit::BuildAnsweringChain(
    const AttrList& telephone_attrs) {
  AnsweringChain chain;
  chain.loud = conn_->CreateLoud(kNoResource, {});
  chain.telephone = conn_->CreateDevice(chain.loud, DeviceClass::kTelephone, telephone_attrs);
  chain.player = conn_->CreateDevice(chain.loud, DeviceClass::kPlayer, {});
  chain.recorder = conn_->CreateDevice(chain.loud, DeviceClass::kRecorder, {});
  // Player output -> telephone input (greeting to the caller); telephone
  // output -> recorder input (the caller's message). Figure 5-3.
  conn_->CreateWire(chain.player, 0, chain.telephone, 0);
  conn_->CreateWire(chain.telephone, 0, chain.recorder, 0);
  conn_->SelectEvents(chain.loud, kAllEvents);
  return chain;  // Left unmapped: the application maps when the phone rings.
}

namespace {
// Server-side catalogue name backing the cross-application clipboard.
constexpr char kClipboardName[] = "CLIPBOARD";
}  // namespace

void AudioToolkit::CopyToClipboard(ResourceId sound) {
  conn_->SaveCatalogueSound(sound, kClipboardName);
}

ResourceId AudioToolkit::PasteFromClipboard() {
  ResourceId sound = conn_->LoadCatalogueSound(kClipboardName);
  if (!conn_->Sync().ok()) {
    return kNoResource;
  }
  AsyncError error;
  while (conn_->NextError(&error)) {
    if (error.error.code == ErrorCode::kBadName) {
      return kNoResource;  // empty clipboard
    }
  }
  return sound;
}

bool AudioToolkit::PlayAndWait(const PlaybackChain& chain, ResourceId sound, int timeout_ms) {
  uint32_t tag = next_tag_++;
  conn_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, tag)});
  conn_->StartQueue(chain.loud);
  // Flush so virtual-time pumping can't race ahead of the requests. A
  // failed sync means the connection is gone; the command will never
  // complete, so don't wait for it.
  if (!conn_->Sync().ok()) {
    return false;
  }
  return WaitCommandDone(tag, timeout_ms);
}

bool AudioToolkit::SayAndWait(const std::string& text, int timeout_ms) {
  ResourceId loud = conn_->CreateLoud(kNoResource, {});
  ResourceId synth = conn_->CreateDevice(loud, DeviceClass::kSpeechSynthesizer, {});
  ResourceId output = conn_->CreateDevice(loud, DeviceClass::kOutput, {});
  conn_->CreateWire(synth, 0, output, 0);
  conn_->SelectEvents(loud, kQueueEvents);
  conn_->MapLoud(loud);
  uint32_t tag = next_tag_++;
  conn_->Enqueue(loud, {SpeakTextCommand(synth, text, tag)});
  conn_->StartQueue(loud);
  if (!conn_->Sync().ok()) {
    conn_->DestroyLoud(loud);
    return false;
  }
  bool done = WaitCommandDone(tag, timeout_ms);
  conn_->DestroyLoud(loud);
  return done;
}

}  // namespace aud
