// The audio manager client (section 4.3): the window-manager analogue
// that enforces contention policy. It claims map/restack redirection
// (section 5.8) and decides, per policy, whether to perform redirected
// requests on the application's behalf.

#ifndef SRC_TOOLKIT_AUDIO_MANAGER_H_
#define SRC_TOOLKIT_AUDIO_MANAGER_H_

#include <functional>
#include <vector>

#include "src/alib/alib.h"

namespace aud {

class AudioManager {
 public:
  enum class Policy : uint8_t {
    // Every map request is honored (the protocol's sensible default made
    // explicit).
    kAllowAll = 0,
    // Only the most recent mapper plays: mapping a new LOUD lowers all
    // previously managed LOUDs.
    kFocusFollowsMap = 1,
    // Map requests are refused (do-not-disturb).
    kDenyAll = 2,
  };

  // `connection` must outlive the manager; the manager claims redirection
  // on it immediately.
  AudioManager(AudioConnection* connection, Policy policy);
  ~AudioManager();

  void set_policy(Policy policy) { policy_ = policy; }
  Policy policy() const { return policy_; }

  // Processes queued redirect events; returns how many were handled. Call
  // from the application's event loop.
  int Pump();

  // LOUDs this manager has allowed on (its view of) the stack, most
  // recent first.
  const std::vector<ResourceId>& managed() const { return managed_; }

  // Hook invoked for each redirected map request; return value overrides
  // the policy verdict when set.
  using MapFilter = std::function<bool(ResourceId loud)>;
  void set_map_filter(MapFilter filter) { filter_ = std::move(filter); }

 private:
  void HandleMapRequest(ResourceId loud);
  void HandleRestackRequest(ResourceId loud, bool raise);

  AudioConnection* conn_;
  Policy policy_;
  std::vector<ResourceId> managed_;
  MapFilter filter_;
};

}  // namespace aud

#endif  // SRC_TOOLKIT_AUDIO_MANAGER_H_
