#include "src/toolkit/dialogue.h"

namespace aud {

std::optional<AudioDialogue::TakeMessageResult> AudioDialogue::PromptAndRecord(
    ResourceId loud, ResourceId player, ResourceId recorder, ResourceId prompt,
    uint32_t max_ms, int timeout_ms) {
  AudioConnection* conn = toolkit_->connection();
  ResourceId message = conn->CreateSound(kTelephoneFormat);

  uint32_t record_tag = next_tag_++;
  std::vector<CommandSpec> commands;
  if (prompt != kNoResource) {
    commands.push_back(PlayCommand(player, prompt, next_tag_++));
  }
  commands.push_back(RecordCommand(recorder, message,
                                   kTerminateOnPause | kTerminateOnHangup, max_ms,
                                   record_tag));
  conn->Enqueue(loud, commands);
  conn->StartQueue(loud);

  TakeMessageResult result;
  result.sound = message;
  bool stopped = false;
  auto done = toolkit_->WaitFor(
      [&](const EventMessage& event) {
        if (event.type == EventType::kRecorderStopped) {
          RecorderStoppedArgs args = RecorderStoppedArgs::Decode(event.args);
          result.samples = args.samples;
          result.reason = static_cast<RecordStopReason>(args.reason);
          stopped = true;
        }
        if (event.type != EventType::kCommandDone) {
          return false;
        }
        return CommandDoneArgs::Decode(event.args).tag == record_tag;
      },
      timeout_ms);
  if (!done) {
    conn->DestroySound(message);
    return std::nullopt;
  }
  if (!stopped) {
    // Completion without a RecorderStopped (aborted start); query size.
    auto info = conn->QuerySound(message);
    if (info.ok()) {
      result.samples = info.value().samples;
    }
  }
  return result;
}

std::optional<std::string> AudioDialogue::PromptAndRecognize(ResourceId loud,
                                                             ResourceId player,
                                                             ResourceId prompt,
                                                             int timeout_ms) {
  AudioConnection* conn = toolkit_->connection();
  // A result may arrive while the prompt is still playing (barge-in);
  // capture it from the side channel instead of dropping it.
  std::optional<std::string> early;
  if (prompt != kNoResource) {
    uint32_t tag = next_tag_++;
    conn->Enqueue(loud, {PlayCommand(player, prompt, tag)});
    conn->StartQueue(loud);
    // A failed sync means the connection is gone; no prompt completion or
    // recognition event will ever arrive.
    if (!conn->Sync().ok()) {
      return std::nullopt;
    }
    auto done = toolkit_->WaitFor(
        [&](const EventMessage& e) {
          return e.type == EventType::kCommandDone &&
                 CommandDoneArgs::Decode(e.args).tag == tag;
        },
        timeout_ms,
        [&](const EventMessage& e) {
          if (e.type == EventType::kRecognition && !early) {
            early = RecognitionArgs::Decode(e.args).word;
          }
        });
    if (!done) {
      return std::nullopt;
    }
  }
  if (early) {
    return early;
  }
  auto event = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kRecognition; }, timeout_ms);
  if (!event) {
    return std::nullopt;
  }
  return RecognitionArgs::Decode(event->args).word;
}

}  // namespace aud
