// The audio toolkit (section 4.2): a policy-free layer over Alib that
// hides device wiring, sound location/format, and queue management, and
// provides mechanisms for synchronizing audio with other media. Clients
// use it to build audio user interfaces (dialogues, touch-tone menus).

#ifndef SRC_TOOLKIT_TOOLKIT_H_
#define SRC_TOOLKIT_TOOLKIT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/alib/alib.h"
#include "src/common/sample.h"

namespace aud {

// Called while the toolkit waits for server events. In-process setups pass
// a lambda that steps the server's virtual clock; networked clients leave
// the default (a short real sleep inside WaitEvent).
using TimePump = std::function<void()>;

class AudioToolkit {
 public:
  // `connection` must outlive the toolkit.
  explicit AudioToolkit(AudioConnection* connection);

  AudioConnection* connection() { return conn_; }

  void set_time_pump(TimePump pump) { pump_ = std::move(pump); }

  // -- Sounds -----------------------------------------------------------------

  // Uploads linear PCM as a server-side sound in `format` (encoding done
  // client-side). Returns the sound id.
  ResourceId UploadSound(std::span<const Sample> samples, AudioFormat format);

  // Downloads and decodes a server-side sound to linear PCM.
  Result<std::vector<Sample>> DownloadSound(ResourceId sound);

  // -- Event helpers ------------------------------------------------------------

  // Pumps until an event satisfying `pred` arrives; other events go
  // through `side_channel` if provided, else are dropped. Returns nullopt
  // on timeout.
  std::optional<EventMessage> WaitFor(const std::function<bool(const EventMessage&)>& pred,
                                      int timeout_ms = 10000,
                                      const std::function<void(const EventMessage&)>&
                                          side_channel = nullptr);

  // Waits for CommandDone with `tag` on any resource.
  bool WaitCommandDone(uint32_t tag, int timeout_ms = 10000);

  // -- Structure builders ("hide or automate wiring of devices") -----------------

  // A player wired to a speaker, mapped and ready: the quickstart path.
  struct PlaybackChain {
    ResourceId loud = kNoResource;
    ResourceId player = kNoResource;
    ResourceId output = kNoResource;
  };
  PlaybackChain BuildPlaybackChain(const AttrList& output_attrs = {});

  // A microphone wired to a recorder.
  struct RecordChain {
    ResourceId loud = kNoResource;
    ResourceId input = kNoResource;
    ResourceId recorder = kNoResource;
  };
  RecordChain BuildRecordChain(const AttrList& input_attrs = {});

  // The answering-machine LOUD of section 5.9: telephone + player wired to
  // it + recorder wired from it.
  struct AnsweringChain {
    ResourceId loud = kNoResource;
    ResourceId telephone = kNoResource;
    ResourceId player = kNoResource;
    ResourceId recorder = kNoResource;
  };
  AnsweringChain BuildAnsweringChain(const AttrList& telephone_attrs = {});

  // -- The audio clipboard (figure 1-1: moving sound between applications,
  // e.g. a voice message pasted into the calendar) -------------------------

  // Copies a sound into the server-side clipboard, visible to every
  // client of this server.
  void CopyToClipboard(ResourceId sound);

  // Pastes the clipboard into a fresh sound id (kNoResource if empty).
  ResourceId PasteFromClipboard();

  // Plays a sound through a chain and waits for completion. Returns false
  // on timeout/abort.
  bool PlayAndWait(const PlaybackChain& chain, ResourceId sound, int timeout_ms = 30000);

  // Speaks text via a synthesizer wired to a speaker; waits for completion.
  bool SayAndWait(const std::string& text, int timeout_ms = 60000);

 private:
  void Pump();

  AudioConnection* conn_;
  TimePump pump_;
  uint32_t next_tag_ = 1;
};

}  // namespace aud

#endif  // SRC_TOOLKIT_TOOLKIT_H_
