// Audio dialogue: the prompt-then-respond pattern — play a prompt, then
// record (take a message) or recognize (voice command). The queue does the
// prompt→record transition server-side with no round trip (section 5.5's
// motivating example).

#ifndef SRC_TOOLKIT_DIALOGUE_H_
#define SRC_TOOLKIT_DIALOGUE_H_

#include <optional>
#include <string>

#include "src/toolkit/toolkit.h"

namespace aud {

class AudioDialogue {
 public:
  explicit AudioDialogue(AudioToolkit* toolkit) : toolkit_(toolkit) {}

  struct TakeMessageResult {
    ResourceId sound = kNoResource;     // Recorded audio.
    uint64_t samples = 0;
    RecordStopReason reason = RecordStopReason::kStopped;
  };

  // Plays `prompt` on `player`, then records from `recorder` into a fresh
  // sound until trailing silence or `max_ms`. Both devices must live in
  // `loud` with wiring already in place.
  std::optional<TakeMessageResult> PromptAndRecord(ResourceId loud, ResourceId player,
                                                   ResourceId recorder, ResourceId prompt,
                                                   uint32_t max_ms = 30000,
                                                   int timeout_ms = 120000);

  // Plays `prompt`, then waits for one recognition result from an already
  // listening recognizer in the same LOUD.
  std::optional<std::string> PromptAndRecognize(ResourceId loud, ResourceId player,
                                                ResourceId prompt, int timeout_ms = 20000);

 private:
  AudioToolkit* toolkit_;
  uint32_t next_tag_ = 5000;
};

}  // namespace aud

#endif  // SRC_TOOLKIT_DIALOGUE_H_
