// Touch-tone menu: the building block of the paper's telephone-based
// interfaces ("dial by name", voice mail over the phone). Plays a prompt,
// then collects DTMF digits with inter-digit timeout, with immediate
// barge-in (a digit during the prompt stops playback, per section 1.4's
// demand for immediate feedback).

#ifndef SRC_TOOLKIT_TONE_MENU_H_
#define SRC_TOOLKIT_TONE_MENU_H_

#include <optional>
#include <string>

#include "src/toolkit/toolkit.h"

namespace aud {

class ToneMenu {
 public:
  struct Options {
    // Stop collecting after this many digits.
    int max_digits = 1;
    // A '#' terminates multi-digit entry early.
    bool hash_terminates = true;
    // Give up if no digit arrives within this window.
    int digit_timeout_ms = 10000;
  };

  // `toolkit` must outlive the menu. `loud` is the root LOUD holding the
  // telephone; `telephone` and `player` are its devices.
  ToneMenu(AudioToolkit* toolkit, ResourceId loud, ResourceId telephone, ResourceId player);

  // Plays `prompt_sound` (kNoResource to skip) and collects digits per
  // `options`. Returns the digit string, or nullopt on timeout/hangup.
  std::optional<std::string> Run(ResourceId prompt_sound, const Options& options);

  // Digits that arrived outside Run (type-ahead) are buffered and consumed
  // by the next Run.
  void NoteDigit(char digit) { buffered_.push_back(digit); }

 private:
  AudioToolkit* toolkit_;
  ResourceId loud_;
  ResourceId telephone_;
  ResourceId player_;
  std::string buffered_;
  uint32_t next_tag_ = 9000;
};

}  // namespace aud

#endif  // SRC_TOOLKIT_TONE_MENU_H_
