// Soundviewer model (section 6 / Figure 6-1): a playback-progress widget
// driven by the server's synchronization events. The original was an X
// toolkit widget; we model the widget state (position bar, tick marks,
// selection) and render to a terminal line, driven by the same kSyncMark
// events.

#ifndef SRC_TOOLKIT_SOUNDVIEWER_H_
#define SRC_TOOLKIT_SOUNDVIEWER_H_

#include <functional>
#include <string>

#include "src/alib/alib.h"

namespace aud {

class Soundviewer {
 public:
  struct Options {
    int width_chars = 50;
    // A tick mark every this many seconds of audio.
    double tick_seconds = 1.0;
  };

  Soundviewer(uint32_t sample_rate_hz, Options options);
  explicit Soundviewer(uint32_t sample_rate_hz);

  // Feeds one sync-mark event; returns true if the display changed.
  bool OnSyncMark(const SyncMarkArgs& mark);

  // Selection (the "dashes in the middle" of Figure 6-1), in samples.
  void SetSelection(uint64_t begin, uint64_t end);
  void ClearSelection();

  uint64_t position() const { return position_; }
  uint64_t total() const { return total_; }
  double fraction() const;

  // Renders the bar: '#' played, '-' unplayed, '=' selected-unplayed,
  // '%' selected-played, '|' tick marks overlaid on boundaries.
  std::string Render() const;

 private:
  uint32_t rate_;
  Options options_;
  uint64_t position_ = 0;
  uint64_t total_ = 0;
  uint64_t selection_begin_ = 0;
  uint64_t selection_end_ = 0;
  int last_cells_ = -1;
};

}  // namespace aud

#endif  // SRC_TOOLKIT_SOUNDVIEWER_H_
