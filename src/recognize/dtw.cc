#include "src/recognize/dtw.h"

#include <algorithm>

namespace aud {

double DtwDistance(const std::vector<FeatureVector>& a, const std::vector<FeatureVector>& b) {
  size_t n = a.size();
  size_t m = b.size();
  if (n == 0 || m == 0) {
    return kDtwInfinity;
  }
  if (n > 2 * m + 4 || m > 2 * n + 4) {
    return kDtwInfinity;
  }

  // Rolling two-row DP with symmetric step pattern (diag/up/left).
  std::vector<double> prev(m + 1, kDtwInfinity);
  std::vector<double> cur(m + 1, kDtwInfinity);
  prev[0] = 0.0;

  for (size_t i = 1; i <= n; ++i) {
    cur[0] = kDtwInfinity;
    for (size_t j = 1; j <= m; ++j) {
      double cost = FeatureDistance(a[i - 1], b[j - 1]);
      double best = std::min({prev[j - 1], prev[j], cur[j - 1]});
      cur[j] = best == kDtwInfinity ? kDtwInfinity : best + cost;
    }
    std::swap(prev, cur);
  }
  double total = prev[m];
  if (total == kDtwInfinity) {
    return kDtwInfinity;
  }
  return total / static_cast<double>(n + m);
}

}  // namespace aud
