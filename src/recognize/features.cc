#include "src/recognize/features.h"

#include <cmath>

#include "src/dsp/goertzel.h"

namespace aud {

namespace {
// Filter-bank center frequencies (Hz): roughly mel-spaced over telephone
// bandwidth.
constexpr std::array<double, 6> kBandCenters = {250, 500, 1000, 1750, 2500, 3400};
}  // namespace

FeatureVector ExtractFrameFeatures(std::span<const Sample> frame, uint32_t sample_rate_hz) {
  FeatureVector f{};
  if (frame.empty()) {
    return f;
  }

  // Log energy.
  double energy = 0.0;
  for (Sample s : frame) {
    double x = s / 32768.0;
    energy += x * x;
  }
  energy /= static_cast<double>(frame.size());
  f[0] = std::log10(energy + 1e-9);

  // Zero-crossing rate.
  int crossings = 0;
  for (size_t i = 1; i < frame.size(); ++i) {
    if ((frame[i - 1] >= 0) != (frame[i] >= 0)) {
      ++crossings;
    }
  }
  f[1] = static_cast<double>(crossings) / static_cast<double>(frame.size());

  // Band energies, normalized so spectral *shape* dominates over level.
  double total = 1e-9;
  std::array<double, kBandCenters.size()> bands;
  for (size_t b = 0; b < kBandCenters.size(); ++b) {
    bands[b] = GoertzelPower(frame, kBandCenters[b], sample_rate_hz);
    total += bands[b];
  }
  for (size_t b = 0; b < kBandCenters.size(); ++b) {
    f[2 + b] = bands[b] / total;
  }
  return f;
}

std::vector<FeatureVector> ExtractFeatures(std::span<const Sample> samples,
                                           uint32_t sample_rate_hz) {
  size_t frame_len = static_cast<size_t>(sample_rate_hz) * kFeatureFrameMs / 1000;
  std::vector<FeatureVector> out;
  if (frame_len == 0) {
    return out;
  }
  for (size_t pos = 0; pos + frame_len <= samples.size(); pos += frame_len) {
    out.push_back(ExtractFrameFeatures(samples.subspan(pos, frame_len), sample_rate_hz));
  }
  return out;
}

double FeatureDistance(const FeatureVector& a, const FeatureVector& b) {
  double acc = 0.0;
  for (size_t i = 0; i < kFeatureDim; ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace aud
