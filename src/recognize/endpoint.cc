#include "src/recognize/endpoint.h"

#include <cmath>

namespace aud {

namespace {
constexpr int kFrameMs = 20;

double FrameRms(std::span<const Sample> frame) {
  if (frame.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (Sample s : frame) {
    double x = s / 32768.0;
    acc += x * x;
  }
  return std::sqrt(acc / static_cast<double>(frame.size()));
}
}  // namespace

Endpointer::Endpointer(uint32_t sample_rate_hz) : Endpointer(sample_rate_hz, Options{}) {}

Endpointer::Endpointer(uint32_t sample_rate_hz, Options options)
    : rate_(sample_rate_hz),
      options_(options),
      frame_len_(static_cast<size_t>(sample_rate_hz) * kFrameMs / 1000) {}

void Endpointer::Process(std::span<const Sample> in, const UtteranceSink& sink) {
  for (Sample s : in) {
    frame_.push_back(s);
    if (frame_.size() == frame_len_) {
      AnalyzeFrame(sink);
      frame_.clear();
    }
  }
}

void Endpointer::AnalyzeFrame(const UtteranceSink& sink) {
  bool speech = FrameRms(frame_) >= options_.speech_threshold;

  if (!in_utterance_) {
    if (speech) {
      in_utterance_ = true;
      silent_frames_ = 0;
      current_.assign(frame_.begin(), frame_.end());
    }
    return;
  }

  current_.insert(current_.end(), frame_.begin(), frame_.end());
  silent_frames_ = speech ? 0 : silent_frames_ + 1;

  bool ended = silent_frames_ * kFrameMs >= options_.end_silence_ms;
  bool too_long = current_.size() >= static_cast<size_t>(rate_) * options_.max_utterance_ms / 1000;
  if (ended || too_long) {
    // Trim trailing silence frames.
    size_t trim = static_cast<size_t>(silent_frames_) * frame_len_;
    if (trim < current_.size()) {
      current_.resize(current_.size() - trim);
    }
    if (current_.size() >= static_cast<size_t>(rate_) * options_.min_utterance_ms / 1000 &&
        sink) {
      sink(std::move(current_));
    }
    current_.clear();
    in_utterance_ = false;
    silent_frames_ = 0;
  }
}

void Endpointer::Reset() {
  frame_.clear();
  current_.clear();
  in_utterance_ = false;
  silent_frames_ = 0;
}

}  // namespace aud
