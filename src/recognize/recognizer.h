// Small-vocabulary isolated-word recognizer: DTW template matching over
// endpointed utterances. Backs the protocol's speech-recognizer device
// class: Train, SetVocabulary, AdjustContext, SaveVocabulary, and
// asynchronous recognition-result events (section 5.1).

#ifndef SRC_RECOGNIZE_RECOGNIZER_H_
#define SRC_RECOGNIZE_RECOGNIZER_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/recognize/dtw.h"
#include "src/recognize/endpoint.h"
#include "src/recognize/features.h"

namespace aud {

// A recognition result: the best-matching vocabulary word and a confidence
// score in 0..10000 (protocol scale).
struct RecognitionResult {
  std::string word;
  uint32_t score = 0;
};

class WordRecognizer {
 public:
  explicit WordRecognizer(uint32_t sample_rate_hz);

  // Adds a training template for `word` from example audio. Multiple
  // templates per word are kept (matching takes the best).
  void Train(const std::string& word, std::span<const Sample> example);

  // Restricts matching to `words` (the active vocabulary). Words without
  // templates are ignored at match time. Empty = all trained words.
  void SetVocabulary(const std::vector<std::string>& words);

  // Further narrows the active context within the vocabulary (the paper's
  // AdjustContext: per-application word subsets).
  void AdjustContext(const std::vector<std::string>& active_words);

  // Matches one already-endpointed utterance; nullopt when nothing scores
  // above the rejection threshold.
  std::optional<RecognitionResult> RecognizeUtterance(std::span<const Sample> utterance) const;

  // Streaming mode: feed continuous audio; results are delivered through
  // the callback as utterances complete.
  using ResultSink = std::function<void(const RecognitionResult&)>;
  void ProcessStream(std::span<const Sample> in, const ResultSink& sink);

  // Serialization of the trained templates (SaveVocabulary support).
  std::vector<uint8_t> SaveTemplates() const;
  bool LoadTemplates(std::span<const uint8_t> data);

  size_t template_count() const;
  std::vector<std::string> trained_words() const;

 private:
  bool WordActive(const std::string& word) const;

  uint32_t rate_;
  std::map<std::string, std::vector<std::vector<FeatureVector>>> templates_;
  std::set<std::string> vocabulary_;  // empty = everything
  std::set<std::string> context_;    // empty = whole vocabulary
  Endpointer endpointer_;

  // Normalized DTW distance above which an utterance is rejected.
  double rejection_threshold_ = 1.2;
};

}  // namespace aud

#endif  // SRC_RECOGNIZE_RECOGNIZER_H_
