// Acoustic feature extraction for the word recognizer: the "digital signal
// processor" half of recognition the paper describes (section 1.1). Each
// 20 ms frame yields a small feature vector — log energy, zero-crossing
// rate, and a 6-band filter-bank energy profile — which is cheap enough
// for a general-purpose CPU and adequate for small-vocabulary DTW.

#ifndef SRC_RECOGNIZE_FEATURES_H_
#define SRC_RECOGNIZE_FEATURES_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// Features per frame: [0] log energy, [1] zero-crossing rate, [2..7]
// normalized band energies.
inline constexpr size_t kFeatureDim = 8;
using FeatureVector = std::array<double, kFeatureDim>;

// Frame length used throughout the recognizer.
inline constexpr int kFeatureFrameMs = 20;

// Extracts a feature vector from one frame of samples.
FeatureVector ExtractFrameFeatures(std::span<const Sample> frame, uint32_t sample_rate_hz);

// Extracts features for a whole utterance (trailing partial frame is
// dropped).
std::vector<FeatureVector> ExtractFeatures(std::span<const Sample> samples,
                                           uint32_t sample_rate_hz);

// Euclidean distance between two feature vectors.
double FeatureDistance(const FeatureVector& a, const FeatureVector& b);

}  // namespace aud

#endif  // SRC_RECOGNIZE_FEATURES_H_
