// Dynamic time warping over feature sequences: the classical
// small-vocabulary template matcher of the paper's era. Computes the
// normalized alignment cost between an utterance and a stored template.

#ifndef SRC_RECOGNIZE_DTW_H_
#define SRC_RECOGNIZE_DTW_H_

#include <limits>
#include <vector>

#include "src/recognize/features.h"

namespace aud {

// Normalized DTW distance (cost per aligned frame). Lower is more similar.
// Returns +inf when either sequence is empty or the length ratio exceeds
// the warping window (a sequence can't warp to more than ~2x its length).
double DtwDistance(const std::vector<FeatureVector>& a, const std::vector<FeatureVector>& b);

inline constexpr double kDtwInfinity = std::numeric_limits<double>::infinity();

}  // namespace aud

#endif  // SRC_RECOGNIZE_DTW_H_
