#include "src/recognize/recognizer.h"

#include <cmath>

#include "src/common/byte_io.h"

namespace aud {

WordRecognizer::WordRecognizer(uint32_t sample_rate_hz)
    : rate_(sample_rate_hz), endpointer_(sample_rate_hz) {}

void WordRecognizer::Train(const std::string& word, std::span<const Sample> example) {
  auto features = ExtractFeatures(example, rate_);
  if (features.empty()) {
    return;
  }
  templates_[word].push_back(std::move(features));
}

void WordRecognizer::SetVocabulary(const std::vector<std::string>& words) {
  vocabulary_.clear();
  vocabulary_.insert(words.begin(), words.end());
  context_.clear();
}

void WordRecognizer::AdjustContext(const std::vector<std::string>& active_words) {
  context_.clear();
  context_.insert(active_words.begin(), active_words.end());
}

bool WordRecognizer::WordActive(const std::string& word) const {
  if (!vocabulary_.empty() && vocabulary_.find(word) == vocabulary_.end()) {
    return false;
  }
  if (!context_.empty() && context_.find(word) == context_.end()) {
    return false;
  }
  return true;
}

std::optional<RecognitionResult> WordRecognizer::RecognizeUtterance(
    std::span<const Sample> utterance) const {
  auto features = ExtractFeatures(utterance, rate_);
  if (features.empty()) {
    return std::nullopt;
  }

  double best = kDtwInfinity;
  double second = kDtwInfinity;
  const std::string* best_word = nullptr;
  for (const auto& [word, examples] : templates_) {
    if (!WordActive(word)) {
      continue;
    }
    for (const auto& tmpl : examples) {
      double d = DtwDistance(features, tmpl);
      if (d < best) {
        second = best;
        best = d;
        best_word = &word;
      } else if (d < second) {
        second = d;
      }
    }
  }

  if (best_word == nullptr || best > rejection_threshold_) {
    return std::nullopt;
  }

  // Confidence from distance and margin over the runner-up.
  double closeness = 1.0 - best / rejection_threshold_;
  double margin = second == kDtwInfinity ? 1.0
                                         : std::min(1.0, (second - best) / (best + 1e-9));
  double confidence = 0.5 * closeness + 0.5 * margin;
  RecognitionResult result;
  result.word = *best_word;
  result.score = static_cast<uint32_t>(std::lround(confidence * 10000.0));
  return result;
}

void WordRecognizer::ProcessStream(std::span<const Sample> in, const ResultSink& sink) {
  endpointer_.Process(in, [&](std::vector<Sample> utterance) {
    auto result = RecognizeUtterance(utterance);
    if (result && sink) {
      sink(*result);
    }
  });
}

std::vector<uint8_t> WordRecognizer::SaveTemplates() const {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(templates_.size()));
  for (const auto& [word, examples] : templates_) {
    w.WriteString(word);
    w.WriteU32(static_cast<uint32_t>(examples.size()));
    for (const auto& tmpl : examples) {
      w.WriteU32(static_cast<uint32_t>(tmpl.size()));
      for (const FeatureVector& f : tmpl) {
        for (double v : f) {
          // Fixed-point at 1e-6 resolution keeps the format byte-stable.
          w.WriteI64(static_cast<int64_t>(std::llround(v * 1e6)));
        }
      }
    }
  }
  return w.Take();
}

bool WordRecognizer::LoadTemplates(std::span<const uint8_t> data) {
  ByteReader r(data);
  std::map<std::string, std::vector<std::vector<FeatureVector>>> loaded;
  uint32_t words = r.ReadU32();
  for (uint32_t wi = 0; wi < words && r.ok(); ++wi) {
    std::string word = r.ReadString();
    uint32_t examples = r.ReadU32();
    for (uint32_t e = 0; e < examples && r.ok(); ++e) {
      uint32_t frames = r.ReadU32();
      std::vector<FeatureVector> tmpl;
      tmpl.reserve(frames);
      for (uint32_t f = 0; f < frames && r.ok(); ++f) {
        FeatureVector fv;
        for (double& v : fv) {
          v = static_cast<double>(r.ReadI64()) / 1e6;
        }
        tmpl.push_back(fv);
      }
      loaded[word].push_back(std::move(tmpl));
    }
  }
  if (!r.ok()) {
    return false;
  }
  templates_ = std::move(loaded);
  return true;
}

size_t WordRecognizer::template_count() const {
  size_t n = 0;
  for (const auto& [word, examples] : templates_) {
    n += examples.size();
  }
  return n;
}

std::vector<std::string> WordRecognizer::trained_words() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [word, examples] : templates_) {
    out.push_back(word);
  }
  return out;
}

}  // namespace aud
