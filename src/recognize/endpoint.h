// Utterance endpointing: segments a continuous audio stream into
// utterances by energy, so the recognizer can match isolated words — the
// "careful speaking style" constraint the paper notes for era recognizers.

#ifndef SRC_RECOGNIZE_ENDPOINT_H_
#define SRC_RECOGNIZE_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

class Endpointer {
 public:
  struct Options {
    // RMS (fraction of full scale) above which a frame is speech.
    double speech_threshold = 0.02;
    // Trailing silence that ends an utterance.
    int end_silence_ms = 250;
    // Minimum utterance length to report (filters clicks).
    int min_utterance_ms = 100;
    // Hard cap on utterance length.
    int max_utterance_ms = 3000;
  };

  explicit Endpointer(uint32_t sample_rate_hz);
  Endpointer(uint32_t sample_rate_hz, Options options);

  // Feeds audio. Every completed utterance is returned via the callback.
  using UtteranceSink = std::function<void(std::vector<Sample> utterance)>;
  void Process(std::span<const Sample> in, const UtteranceSink& sink);

  // True while inside a (possibly still growing) utterance.
  bool in_utterance() const { return in_utterance_; }

  void Reset();

 private:
  void AnalyzeFrame(const UtteranceSink& sink);

  uint32_t rate_;
  Options options_;
  size_t frame_len_;
  std::vector<Sample> frame_;
  std::vector<Sample> current_;
  bool in_utterance_ = false;
  int silent_frames_ = 0;
};

}  // namespace aud

#endif  // SRC_RECOGNIZE_ENDPOINT_H_
