// Audio-manager demo (sections 4.3 and 5.8): a manager client claims
// map/restack redirection and enforces a focus-follows-map policy over
// two competing applications wanting the single telephone line — the
// audio-domain analogue of a window manager arbitrating screen space.

#include <cstdio>

#include "examples/example_util.h"
#include "src/toolkit/audio_manager.h"
#include "src/transport/pipe_stream.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("app-one", BoardConfig{}, argc, argv);
  AudioConnection& app1 = world.client();

  // Second application and the manager get their own connections.
  auto connect = [&](const char* name) {
    auto [client_end, server_end] = CreatePipePair();
    world.server().AddConnection(std::move(server_end));
    return AudioConnection::Open(std::move(client_end), name);
  };
  auto app2 = connect("app-two");
  auto manager_conn = connect("audio-manager");

  AudioManager manager(manager_conn.get(), AudioManager::Policy::kFocusFollowsMap);
  (void)manager_conn->Sync();
  std::printf("manager holds redirection with focus-follows-map policy\n");

  auto build_phone_app = [](AudioConnection& conn) {
    ResourceId loud = conn.CreateLoud(kNoResource, {});
    conn.CreateDevice(loud, DeviceClass::kTelephone, {});
    conn.SelectEvents(loud, kLifecycleEvents);
    return loud;
  };
  ResourceId loud1 = build_phone_app(app1);
  ResourceId loud2 = build_phone_app(*app2);

  auto pump_manager = [&] {
    for (int i = 0; i < 200; ++i) {
      world.server().StepFrames(160);
      if (manager.Pump() > 0) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };
  auto report = [&](const char* when) {
    (void)app1.Sync();
    (void)app2->Sync();
    auto s1 = app1.QueryLoud(loud1);
    auto s2 = app2->QueryLoud(loud2);
    std::printf("%-28s app1{mapped=%d active=%d}  app2{mapped=%d active=%d}\n", when,
                s1.ok() ? s1.value().mapped : -1, s1.ok() ? s1.value().active : -1,
                s2.ok() ? s2.value().mapped : -1, s2.ok() ? s2.value().active : -1);
  };

  std::printf("app1 asks to map (redirected to the manager)...\n");
  app1.MapLoud(loud1);
  (void)app1.Sync();
  if (!pump_manager()) {
    std::printf("manager never saw the request\n");
    return 1;
  }
  report("after app1 map:");

  std::printf("app2 asks to map; focus policy lowers app1...\n");
  app2->MapLoud(loud2);
  (void)app2->Sync();
  if (!pump_manager()) {
    return 1;
  }
  report("after app2 map:");

  std::printf("app1 asks to be raised (redirected restack)...\n");
  app1.RaiseLoud(loud1);
  (void)app1.Sync();
  if (!pump_manager()) {
    return 1;
  }
  report("after app1 raise:");

  auto s1 = app1.QueryLoud(loud1);
  auto s2 = app2->QueryLoud(loud2);
  bool ok = s1.ok() && s2.ok() && s1.value().active == 1 && s2.value().active == 0;
  std::printf("audio manager demo %s\n", ok ? "complete" : "FAILED");
  return ok ? 0 : 1;
}
