// Telephone voice-mail access (section 1.2: "workstation-based personal
// voice mail ... telephone access"): a caller dials the workstation and
// drives a touch-tone menu built from synthesized prompts:
//
//   1  play the next message        2  replay the current message
//   3  delete the current message   #  hang up
//
// Demonstrates: tone menus with barge-in, TTS prompts over the phone,
// queue-driven playback to the line, and DTMF events.

#include <cstdio>

#include "examples/example_util.h"
#include "src/dsp/tone.h"
#include "src/synth/synthesizer.h"
#include "src/toolkit/tone_menu.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("voicemail", BoardConfig{}, argc, argv);
  AudioConnection& audio = world.client();
  AudioToolkit& toolkit = world.toolkit();
  uint32_t rate = world.board().sample_rate_hz();

  // Seed a mailbox of three "messages" (distinct tones stand in for voice).
  std::vector<ResourceId> mailbox;
  for (double freq : {250.0, 350.0, 500.0}) {
    std::vector<Sample> pcm;
    SineOscillator osc(freq, rate, 0.4);
    osc.Generate(rate, &pcm);  // 1 s each
    mailbox.push_back(toolkit.UploadSound(pcm, kTelephoneFormat));
  }

  // Prompts, synthesized once.
  TextToSpeech tts(rate);
  auto upload_prompt = [&](const std::string& text) {
    return toolkit.UploadSound(tts.Synthesize(text), kTelephoneFormat);
  };
  ResourceId menu_prompt =
      upload_prompt("press one for next message. press three to delete. press pound to end.");
  ResourceId empty_prompt = upload_prompt("no more messages. goodbye.");

  // The phone LOUD: telephone + player (prompts/messages to the caller).
  ResourceId loud = audio.CreateLoud(kNoResource, {});
  ResourceId telephone = audio.CreateDevice(loud, DeviceClass::kTelephone, {});
  ResourceId player = audio.CreateDevice(loud, DeviceClass::kPlayer, {});
  audio.CreateWire(player, 0, telephone, 0);
  audio.SelectEvents(loud, kAllEvents);
  audio.MapLoud(loud);
  (void)audio.Sync();

  // Scripted caller: checks two messages (1, 1), deletes one (3), hangs up.
  FarEndParty* owner = world.board().AddFarEnd("555-9000", "Owner");
  owner->DialAndWait("555-0100")
      .WaitMs(400)
      .SendDtmf("1")      // next message
      .WaitForSilence(600, 30000)
      .SendDtmf("1")      // next message
      .WaitForSilence(600, 30000)
      .SendDtmf("3")      // delete it
      .WaitMs(400)
      .SendDtmf("#")      // goodbye
      .WaitMs(60000);

  // Wait for the incoming call and answer.
  auto ring = toolkit.WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 30000);
  if (!ring) {
    std::printf("no call\n");
    return 1;
  }
  std::printf("[voicemail] call from %s\n",
              TelephoneRingArgs::Decode(ring->args).caller_id.c_str());
  audio.Enqueue(loud, {AnswerCommand(telephone, 1)});
  audio.StartQueue(loud);
  (void)audio.Sync();

  ToneMenu menu(&toolkit, loud, telephone, player);
  size_t cursor = 0;
  bool ended = false;
  int served = 0;
  int deleted = 0;
  while (!ended) {
    auto choice = menu.Run(menu_prompt, {.max_digits = 1, .digit_timeout_ms = 20000});
    if (!choice.has_value()) {
      std::printf("[voicemail] caller gone or silent; ending session\n");
      break;
    }
    char digit = choice->empty() ? '#' : (*choice)[0];
    switch (digit) {
      case '1': {
        if (cursor >= mailbox.size()) {
          toolkit.PlayAndWait({loud, player, telephone}, empty_prompt, 60000);
          ended = true;
          break;
        }
        std::printf("[voicemail] playing message %zu\n", cursor + 1);
        uint32_t tag = 100 + static_cast<uint32_t>(cursor);
        audio.Enqueue(loud, {PlayCommand(player, mailbox[cursor], tag)});
        audio.StartQueue(loud);
        (void)audio.Sync();
        toolkit.WaitCommandDone(tag, 60000);
        ++served;
        ++cursor;
        break;
      }
      case '3':
        if (cursor > 0) {
          std::printf("[voicemail] deleting message %zu\n", cursor);
          audio.DestroySound(mailbox[cursor - 1]);
          ++deleted;
        }
        break;
      default:
        ended = true;
        break;
    }
  }

  audio.Immediate(loud, HangUpCommand(telephone));
  (void)audio.Sync();
  std::printf("voicemail session done: served %d, deleted %d\n", served, deleted);
  return served >= 2 && deleted >= 1 ? 0 : 1;
}
