// Quickstart: the smallest complete netaudio client.
//
// Connects to an (in-process) audio server, builds the canonical playback
// structure -- a LOUD holding a player wired to an output -- uploads a
// sound, and plays it through the command queue, waiting on the
// CommandDone event.
//
// Run:  ./quickstart            (accelerated virtual time)
//       ./quickstart --realtime (engine paced against the wall clock)

#include <cstdio>

#include "examples/example_util.h"
#include "src/dsp/tone.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("quickstart", BoardConfig{}, argc, argv);
  AudioConnection& audio = world.client();
  AudioToolkit& toolkit = world.toolkit();

  std::printf("connected to \"%s\"\n", audio.server_name().c_str());

  // List what the server's catalogue offers.
  auto catalogue = audio.ListCatalogue();
  if (catalogue.ok()) {
    std::printf("server catalogue:\n");
    for (const auto& entry : catalogue.value().entries) {
      std::printf("  %-10s %6llu bytes, %s @ %u Hz\n", entry.name.c_str(),
                  static_cast<unsigned long long>(entry.size_bytes),
                  std::string(EncodingName(entry.format.encoding)).c_str(),
                  entry.format.sample_rate_hz);
    }
  }

  // Upload one second of A440 as a telephone-quality (mu-law) sound.
  std::vector<Sample> tone;
  SineOscillator osc(440.0, world.board().sample_rate_hz(), 0.4);
  osc.Generate(world.board().sample_rate_hz(), &tone);
  ResourceId sound = toolkit.UploadSound(tone, kTelephoneFormat);

  // Player -> output, mapped and active.
  auto chain = toolkit.BuildPlaybackChain();

  std::printf("playing 1 s tone...\n");
  if (!toolkit.PlayAndWait(chain, sound)) {
    std::printf("playback did not complete\n");
    return 1;
  }

  // Then a catalogue sound, back to back with a beep via the queue.
  ResourceId beep = audio.LoadCatalogueSound("beep");
  std::printf("playing catalogue beep twice, gapless...\n");
  audio.Enqueue(chain.loud,
                {PlayCommand(chain.player, beep, 1), PlayCommand(chain.player, beep, 2)});
  audio.StartQueue(chain.loud);
  (void)audio.Sync();
  if (!toolkit.WaitCommandDone(2, 30000)) {
    std::printf("queue did not finish\n");
    return 1;
  }

  auto server_time = audio.GetServerTime();
  if (server_time.ok()) {
    std::printf("done; server time %lld us\n",
                static_cast<long long>(server_time.value()));
  }
  std::printf("quickstart complete\n");
  return 0;
}
