// The paper's flagship application (section 5.9, figures 5-1..5-4): a
// complete answering machine.
//
//   * The LOUD (telephone + player + recorder, wired per figure 5-3) stays
//     unmapped while idle; the app monitors the *device LOUD* telephone
//     for rings (footnote 6).
//   * The greeting is synthesized text ("please leave a message...").
//   * On ring: map the LOUD, start the preloaded queue: Answer -> Play
//     greeting -> Play beep -> Record (terminate on pause or hangup).
//   * Caller-id labels each message; messages are saved to the server
//     catalogue.
//
// A scripted far-end caller exercises the machine twice.

#include <cstdio>

#include "examples/example_util.h"
#include "src/dsp/tone.h"
#include "src/synth/synthesizer.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("answering-machine", BoardConfig{}, argc, argv);
  AudioConnection& audio = world.client();
  AudioToolkit& toolkit = world.toolkit();
  uint32_t rate = world.board().sample_rate_hz();

  // Build figure 5-3's LOUD via the toolkit (left unmapped).
  auto machine = toolkit.BuildAnsweringChain();

  // Synthesize the greeting and upload it.
  TextToSpeech tts(rate);
  auto greeting_pcm = tts.Synthesize("please leave a message after the beep.");
  ResourceId greeting = toolkit.UploadSound(greeting_pcm, kTelephoneFormat);
  ResourceId beep = audio.LoadCatalogueSound("beep");

  // Monitor the device-LOUD telephone while unmapped.
  ResourceId phone_device = kNoResource;
  auto device_loud = audio.QueryDeviceLoud();
  if (device_loud.ok()) {
    for (const auto& dev : device_loud.value().devices) {
      if (dev.device_class == DeviceClass::kTelephone) {
        phone_device = dev.id;
        std::printf("monitoring line %s via device LOUD entry 0x%x\n",
                    dev.attrs.GetString(AttrTag::kPhoneNumber).value_or("?").c_str(),
                    phone_device);
      }
    }
  }
  audio.SelectEvents(phone_device, kTelephoneEvents);
  (void)audio.Sync();

  // Two scripted callers.
  auto make_speech = [&](double freq, int ms) {
    std::vector<Sample> speech;
    SineOscillator osc(freq, rate, 0.4);
    osc.Generate(static_cast<size_t>(rate) * ms / 1000, &speech);
    return speech;
  };
  FarEndParty* alice = world.board().AddFarEnd("555-1111", "Alice");
  alice->DialAndWait("555-0100")
      .WaitForTone(20000)
      .Speak(make_speech(300.0, 1500))
      .WaitMs(2500)
      .HangUp();

  int messages_taken = 0;
  while (messages_taken < 2) {
    // Idle: wait for a ring on the monitored device.
    std::printf("[machine] waiting for a call...\n");
    auto ring = toolkit.WaitFor(
        [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 60000);
    if (!ring) {
      std::printf("[machine] no call arrived\n");
      break;
    }
    std::string caller = TelephoneRingArgs::Decode(ring->args).caller_id;
    std::printf("[machine] ring! caller id: %s\n",
                caller.empty() ? "(unavailable)" : caller.c_str());

    // Map, preload the figure 5-4 queue, start.
    ResourceId message = audio.CreateSound(kTelephoneFormat);
    audio.Enqueue(machine.loud,
                  {AnswerCommand(machine.telephone, 1),
                   PlayCommand(machine.player, greeting, 2),
                   PlayCommand(machine.player, beep, 3),
                   RecordCommand(machine.recorder, message,
                                 kTerminateOnPause | kTerminateOnHangup, 30000, 4)});
    audio.MapLoud(machine.loud);
    audio.StartQueue(machine.loud);
    (void)audio.Sync();

    // Wait for the recording to terminate.
    RecorderStoppedArgs stopped;
    auto done = toolkit.WaitFor(
        [&](const EventMessage& e) {
          if (e.type == EventType::kRecorderStopped) {
            stopped = RecorderStoppedArgs::Decode(e.args);
            return true;
          }
          return false;
        },
        120000);
    audio.StopQueue(machine.loud);
    audio.UnmapLoud(machine.loud);
    if (!done) {
      std::printf("[machine] recording never finished\n");
      break;
    }

    double seconds = static_cast<double>(stopped.samples) / rate;
    const char* why = stopped.reason == static_cast<uint8_t>(RecordStopReason::kPauseDetected)
                          ? "silence"
                          : (stopped.reason ==
                                     static_cast<uint8_t>(RecordStopReason::kSourceEnded)
                                 ? "hangup"
                                 : "limit");
    ++messages_taken;
    std::string label = "message-" + std::to_string(messages_taken) + "-from-" +
                        (caller.empty() ? "unknown" : caller);
    audio.SaveCatalogueSound(message, label);
    (void)audio.Sync();
    std::printf("[machine] took message %d from %s: %.1f s (ended on %s), saved as \"%s\"\n",
                messages_taken, caller.c_str(), seconds, why, label.c_str());

    if (messages_taken == 1) {
      // Second caller: leaves touch tones and a shorter message.
      FarEndParty* bob = world.board().AddFarEnd("555-2222", "Bob");
      bob->DialAndWait("555-0100")
          .WaitForTone(20000)
          .Speak(make_speech(500.0, 800))
          .WaitMs(2500)
          .HangUp();
    }
  }

  // Show the message catalogue.
  auto catalogue = audio.ListCatalogue();
  if (catalogue.ok()) {
    std::printf("[machine] catalogue now holds:\n");
    for (const auto& entry : catalogue.value().entries) {
      std::printf("  %-28s %7llu bytes\n", entry.name.c_str(),
                  static_cast<unsigned long long>(entry.size_bytes));
    }
  }
  std::printf("answering machine demo complete (%d messages)\n", messages_taken);
  return messages_taken == 2 ? 0 : 1;
}
