// Shared scaffolding for the example programs: an in-process server over a
// simulated board with a connected client, driven in accelerated virtual
// time (pass --realtime to pace the engine against the wall clock).

#ifndef EXAMPLES_EXAMPLE_UTIL_H_
#define EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {

class ExampleWorld {
 public:
  ExampleWorld(const std::string& client_name, const BoardConfig& config, int argc,
               char** argv)
      : board_(config), server_(&board_) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--realtime") {
        realtime_ = true;
      }
    }
    auto [client_end, server_end] = CreatePipePair();
    server_.AddConnection(std::move(server_end));
    client_ = AudioConnection::Open(std::move(client_end), client_name);
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    if (realtime_) {
      server_.StartRealtime();
    } else {
      toolkit_->set_time_pump([this] { server_.StepFrames(160); });
    }
  }

  ~ExampleWorld() { server_.Shutdown(); }

  Board& board() { return board_; }
  AudioServer& server() { return server_; }
  AudioConnection& client() { return *client_; }
  AudioToolkit& toolkit() { return *toolkit_; }
  bool realtime() const { return realtime_; }

 private:
  Board board_;
  AudioServer server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
  bool realtime_ = false;
};

}  // namespace aud

#endif  // EXAMPLES_EXAMPLE_UTIL_H_
