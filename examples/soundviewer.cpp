// The Soundviewer (section 6, figure 6-1): a playback widget whose bar
// graph advances in response to the server's synchronization events — the
// paper's demonstration that audio can be synchronized with other media
// (here, a terminal display standing in for X graphics).

#include <cstdio>

#include "examples/example_util.h"
#include "src/dsp/tone.h"
#include "src/synth/synthesizer.h"
#include "src/toolkit/soundviewer.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("soundviewer", BoardConfig{}, argc, argv);
  AudioConnection& audio = world.client();
  AudioToolkit& toolkit = world.toolkit();
  uint32_t rate = world.board().sample_rate_hz();

  // The sound under view: 4 s of synthesized speech.
  TextToSpeech tts(rate);
  auto pcm = tts.Synthesize(
      "this is the sound viewer. the bar below follows playback, driven by "
      "server synchronization events.");
  ResourceId sound = toolkit.UploadSound(pcm, kTelephoneFormat);
  auto info = audio.QuerySound(sound);
  double seconds = info.ok() ? static_cast<double>(info.value().samples) / rate : 0.0;
  std::printf("sound: %.1f s, %llu bytes mu-law\n", seconds,
              info.ok() ? static_cast<unsigned long long>(info.value().size_bytes) : 0ull);

  auto chain = toolkit.BuildPlaybackChain();
  // Ask for a sync mark every 125 ms of audio.
  audio.SetSyncMarks(chain.loud, 125);

  Soundviewer viewer(rate, {.width_chars = 60, .tick_seconds = 1.0});
  // Mark a "selection" the way figure 6-1 shows dashes mid-sound.
  if (info.ok()) {
    viewer.SetSelection(info.value().samples / 3, info.value().samples / 2);
  }

  audio.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  audio.StartQueue(chain.loud);
  (void)audio.Sync();

  int marks = 0;
  bool done = false;
  while (!done) {
    auto event = toolkit.WaitFor(
        [&](const EventMessage& e) {
          return e.type == EventType::kSyncMark || e.type == EventType::kCommandDone;
        },
        30000);
    if (!event) {
      std::printf("\n(timeout)\n");
      return 1;
    }
    if (event->type == EventType::kSyncMark) {
      ++marks;
      if (viewer.OnSyncMark(SyncMarkArgs::Decode(event->args))) {
        std::printf("\r%s %5.1f%%", viewer.Render().c_str(), viewer.fraction() * 100.0);
        std::fflush(stdout);
      }
    } else {
      done = true;
    }
  }
  std::printf("\nplayback complete: %d sync marks delivered\n", marks);
  return marks >= 10 ? 0 : 1;
}
