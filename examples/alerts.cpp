// Distinctive alerting (paper section 1.2): "synthesized speech or
// playback of distinctive sounds can be much more effective for alerting
// than the universal 'beep' employed in UNIX applications such as biff,
// talk, wall...".
//
// Three "applications" alert concurrently through one speaker:
//   * biff:  a soft two-tone chime for new mail,
//   * talk:  a synthesized spoken announcement,
//   * wall:  an urgent alert that claims EXCLUSIVE output, silencing the
//            others while it sounds (section 5.8 ambient-domain exclusion).

#include <cstdio>

#include "examples/example_util.h"
#include "src/dsp/tone.h"
#include "src/music/note_synth.h"

int main(int argc, char** argv) {
  using namespace aud;

  ExampleWorld world("alerts", BoardConfig{}, argc, argv);
  AudioConnection& audio = world.client();
  AudioToolkit& toolkit = world.toolkit();
  world.board().speakers()[0]->set_capture_output(true);

  // biff: an ascending two-note chime, rendered by the music synthesizer.
  ResourceId biff_loud = audio.CreateLoud(kNoResource, {});
  ResourceId biff_synth = audio.CreateDevice(biff_loud, DeviceClass::kMusicSynthesizer, {});
  ResourceId biff_out = audio.CreateDevice(biff_loud, DeviceClass::kOutput, {});
  audio.CreateWire(biff_synth, 0, biff_out, 0);
  audio.SelectEvents(biff_loud, kQueueEvents);
  audio.MapLoud(biff_loud);

  // talk: a spoken announcement.
  ResourceId talk_loud = audio.CreateLoud(kNoResource, {});
  ResourceId talk_tts = audio.CreateDevice(talk_loud, DeviceClass::kSpeechSynthesizer, {});
  ResourceId talk_out = audio.CreateDevice(talk_loud, DeviceClass::kOutput, {});
  audio.CreateWire(talk_tts, 0, talk_out, 0);
  audio.SelectEvents(talk_loud, kQueueEvents);
  audio.MapLoud(talk_loud);

  // wall: an exclusive-output klaxon.
  ResourceId wall_loud = audio.CreateLoud(kNoResource, {});
  ResourceId wall_player = audio.CreateDevice(wall_loud, DeviceClass::kPlayer, {});
  AttrList exclusive;
  exclusive.SetBool(AttrTag::kExclusiveOutput, true);
  ResourceId wall_out = audio.CreateDevice(wall_loud, DeviceClass::kOutput, exclusive);
  audio.CreateWire(wall_player, 0, wall_out, 0);
  audio.SelectEvents(wall_loud, kQueueEvents | kLifecycleEvents);

  std::vector<Sample> klaxon;
  {
    DualToneOscillator osc(600.0, 750.0, world.board().sample_rate_hz(), 0.45);
    osc.Generate(world.board().sample_rate_hz(), &klaxon);  // 1 s
  }
  ResourceId klaxon_sound = toolkit.UploadSound(klaxon, kTelephoneFormat);

  // Fire biff and talk together (they mix on the speaker).
  std::printf("[biff] new mail chime + [talk] announcement, mixed...\n");
  audio.Enqueue(biff_loud, {NoteCommand(biff_synth, 76, 90, 180, 1),   // E5
                            NoteCommand(biff_synth, 83, 90, 350, 2)}); // B5
  audio.Enqueue(talk_loud, {SpeakTextCommand(talk_tts, "you have new mail", 3)});
  audio.StartQueue(biff_loud);
  audio.StartQueue(talk_loud);
  (void)audio.Sync();
  if (!toolkit.WaitCommandDone(3, 60000)) {
    std::printf("talk alert never finished\n");
    return 1;
  }

  // Now the wall alert: mapping the exclusive LOUD silences the desktop.
  std::printf("[wall] urgent broadcast claims the speaker exclusively...\n");
  audio.Enqueue(talk_loud,
                {SpeakTextCommand(talk_tts, "this announcement will be interrupted", 4)});
  audio.StartQueue(talk_loud);
  audio.MapLoud(wall_loud);
  audio.Enqueue(wall_loud, {PlayCommand(wall_player, klaxon_sound, 5)});
  audio.StartQueue(wall_loud);
  (void)audio.Sync();
  if (!toolkit.WaitCommandDone(5, 60000)) {
    std::printf("wall alert never finished\n");
    return 1;
  }
  // talk's LOUD was deactivated (its queue server-paused) during the
  // klaxon; unmapping wall lets it finish.
  audio.UnmapLoud(wall_loud);
  (void)audio.Sync();
  bool talk_resumed = toolkit.WaitCommandDone(4, 60000);
  std::printf("[talk] interrupted announcement %s\n",
              talk_resumed ? "resumed and completed" : "never completed");

  size_t audible = 0;
  for (Sample s : world.board().speakers()[0]->played()) {
    if (std::abs(s) > 500) {
      ++audible;
    }
  }
  std::printf("speaker carried %.1f s of alert audio\n",
              static_cast<double>(audible) / world.board().sample_rate_hz());
  std::printf("alerts demo %s\n", talk_resumed ? "complete" : "FAILED");
  return talk_resumed ? 0 : 1;
}
