// FaultStream: the deterministic chaos transport. These tests pin down the
// fault semantics the chaos suite relies on — seeded determinism, short
// reads that only fragment (never corrupt), chopped writes that still
// deliver every byte, and resets that look exactly like a peer dying
// mid-frame. The framer must reassemble perfectly over any of it.

#include "src/transport/fault_stream.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/transport/framer.h"
#include "src/transport/pipe_stream.h"

namespace aud {
namespace {

FaultOptions Faulty() {
  FaultOptions options;
  options.enabled = true;
  options.seed = 42;
  return options;
}

TEST(FaultSpecTest, ParsesEveryKnob) {
  FaultOptions options = ParseFaultSpec(
      "seed=7,short_read=0.25,chop_write=0.5,reset_read=0.01,"
      "reset_write=0.02,delay_us=300");
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_DOUBLE_EQ(options.short_read, 0.25);
  EXPECT_DOUBLE_EQ(options.chop_write, 0.5);
  EXPECT_DOUBLE_EQ(options.reset_read, 0.01);
  EXPECT_DOUBLE_EQ(options.reset_write, 0.02);
  EXPECT_EQ(options.delay_us, 300u);
}

TEST(FaultSpecTest, EmptySpecDisabled) {
  EXPECT_FALSE(ParseFaultSpec("").enabled);
}

TEST(FaultSpecTest, UnknownKeysIgnored) {
  FaultOptions options = ParseFaultSpec("seed=9,future_knob=1.0");
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.seed, 9u);
}

TEST(FaultSpecTest, ForInstanceDerivesDistinctSchedules) {
  FaultOptions base = Faulty();
  FaultOptions a = base.ForInstance(1);
  FaultOptions b = base.ForInstance(2);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.seed, base.seed);
  // Same instance, same derived seed: replays are exact.
  EXPECT_EQ(a.seed, base.ForInstance(1).seed);
}

TEST(FaultStreamTest, MaybeWrapIsIdentityWhenDisabled) {
  auto [a, b] = CreatePipePair();
  ByteStream* raw = a.get();
  auto wrapped = MaybeWrapFault(std::move(a), FaultOptions{});
  EXPECT_EQ(wrapped.get(), raw);
}

TEST(FaultStreamTest, ShortReadDeliversOneBytePrefix) {
  auto [a, b] = CreatePipePair();
  FaultOptions options = Faulty();
  options.short_read = 1.0;
  FaultStream faulty(std::move(a), options);

  const std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(b->Write(data));
  std::vector<uint8_t> got;
  uint8_t buf[16];
  while (got.size() < data.size()) {
    size_t n = faulty.Read(std::span<uint8_t>(buf, sizeof(buf)));
    ASSERT_EQ(n, 1u);  // every read is shortened to a 1-byte prefix
    got.push_back(buf[0]);
  }
  EXPECT_EQ(got, data);  // fragmented, never corrupted
  EXPECT_GE(faulty.faults_injected(), data.size());
}

TEST(FaultStreamTest, ResetReadActsLikePeerDeath) {
  auto [a, b] = CreatePipePair();
  FaultOptions options = Faulty();
  options.reset_read = 1.0;
  FaultStream faulty(std::move(a), options);

  const std::vector<uint8_t> data = {1, 2, 3};
  ASSERT_TRUE(b->Write(data));
  uint8_t buf[8];
  EXPECT_EQ(faulty.Read(buf), 0u);  // EOF despite pending bytes
  EXPECT_EQ(faulty.Read(buf), 0u);  // and the stream stays dead
  EXPECT_FALSE(faulty.Write(data));
}

TEST(FaultStreamTest, ResetWriteFailsAndStaysDead) {
  auto [a, b] = CreatePipePair();
  FaultOptions options = Faulty();
  options.reset_write = 1.0;
  FaultStream faulty(std::move(a), options);

  std::vector<uint8_t> frame(64, 0xAB);
  EXPECT_FALSE(faulty.Write(frame));
  EXPECT_FALSE(faulty.Write(frame));  // still dead
  // The peer sees at most a partial prefix followed by EOF — a mid-frame
  // death, exactly what the server's framer must tolerate.
  std::vector<uint8_t> got(128);
  size_t total = 0;
  while (true) {
    size_t n = b->Read(std::span<uint8_t>(got.data() + total, got.size() - total));
    if (n == 0) {
      break;
    }
    total += n;
  }
  EXPECT_LT(total, frame.size());
}

TEST(FaultStreamTest, ChopWriteDeliversEveryByte) {
  auto [a, b] = CreatePipePair();
  FaultOptions options = Faulty();
  options.chop_write = 1.0;
  FaultStream faulty(std::move(a), options);

  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(faulty.Write(data));
  EXPECT_GE(faulty.faults_injected(), 1u);

  std::vector<uint8_t> got(data.size());
  size_t total = 0;
  while (total < got.size()) {
    size_t n = b->Read(std::span<uint8_t>(got.data() + total, got.size() - total));
    ASSERT_GT(n, 0u);
    total += n;
  }
  EXPECT_EQ(got, data);
}

TEST(FaultStreamTest, SameSeedReplaysSameSchedule) {
  // Two streams with identical options over identical traffic inject the
  // same faults — the property that makes chaos failures replayable.
  auto run = [](uint64_t seed) {
    auto [a, b] = CreatePipePair();
    FaultOptions options;
    options.enabled = true;
    options.seed = seed;
    options.short_read = 0.5;
    options.chop_write = 0.5;
    FaultStream faulty(std::move(a), options);
    std::vector<size_t> trace;
    uint8_t buf[64];
    for (int i = 0; i < 32; ++i) {
      std::vector<uint8_t> data(16, static_cast<uint8_t>(i));
      // Inbound: the peer writes, we drain through the faulty end and
      // record the (short-read-shaped) chunk sizes.
      EXPECT_TRUE(b->Write(data));
      size_t pending = 0;
      while (pending < data.size()) {
        size_t n = faulty.Read(buf);
        if (n == 0) {
          break;
        }
        trace.push_back(n);
        pending += n;
      }
      // Outbound: exercise the chop-write schedule (counted below).
      EXPECT_TRUE(faulty.Write(data));
      pending = 0;
      while (pending < data.size()) {
        pending += b->Read(buf);
      }
    }
    trace.push_back(faulty.faults_injected());
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(FaultStreamTest, FramerReassemblesOverChoppyTransport) {
  // 50 frames of varying size through short reads + chopped writes: the
  // framer must deliver every frame intact and in order.
  auto [a, b] = CreatePipePair();
  FaultOptions write_faults = Faulty();
  write_faults.chop_write = 0.6;
  FaultStream faulty_writer(std::move(a), write_faults);
  FaultOptions read_faults = Faulty();
  read_faults.seed = 43;
  read_faults.short_read = 0.4;
  FaultStream faulty_reader(std::move(b), read_faults);

  std::thread writer([&] {
    for (uint32_t i = 0; i < 50; ++i) {
      std::vector<uint8_t> payload(i * 11 % 97, static_cast<uint8_t>(i));
      ASSERT_TRUE(WriteMessage(&faulty_writer, MessageType::kRequest,
                               static_cast<uint16_t>(i), i, payload));
    }
  });
  for (uint32_t i = 0; i < 50; ++i) {
    std::optional<FramedMessage> msg = ReadMessage(&faulty_reader);
    ASSERT_TRUE(msg.has_value()) << "frame " << i;
    EXPECT_EQ(msg->header.code, static_cast<uint16_t>(i));
    EXPECT_EQ(msg->header.sequence, i);
    ASSERT_EQ(msg->payload.size(), i * 11 % 97);
    for (uint8_t byte : msg->payload) {
      EXPECT_EQ(byte, static_cast<uint8_t>(i));
    }
  }
  writer.join();
}

}  // namespace
}  // namespace aud
