// Event-loop connection plane (DESIGN.md decision 14): the same contracts
// the thread-per-connection plane honors — hostile-client survival, full
// resource reclamation, serial/parallel bit-identity, slow-client overflow
// policies — re-proven with connections multiplexed onto a fixed pool of
// event-loop threads (level- and edge-triggered, epoll and poll backends),
// plus the one property the legacy plane cannot have: thread count that
// does not grow with the client count.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/event_loop.h"
#include "src/transport/framer.h"
#include "src/transport/socket_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

constexpr uint64_t kSeed = 20260808;  // fixed: failures replay exactly

// -- Raw protocol helpers (hostile clients do not get the comfort of Alib) --

ResourceId RawSetup(ByteStream* stream, const std::string& name) {
  SetupRequest request;
  request.client_name = name;
  ByteWriter w;
  request.Encode(&w);
  if (!WriteMessage(stream, MessageType::kRequest, kSetupOpcode, 0, w.bytes())) {
    return kNoResource;
  }
  std::optional<FramedMessage> reply = ReadMessage(stream);
  if (!reply) {
    return kNoResource;
  }
  ByteReader r(reply->payload);
  SetupReply setup = SetupReply::Decode(&r);
  return (r.ok() && setup.success != 0) ? setup.id_base : kNoResource;
}

void SendReq(ByteStream* stream, Opcode opcode, uint32_t seq,
             std::span<const uint8_t> payload) {
  // Failures are expected (the server may have cut us off); ignored.
  WriteMessage(stream, MessageType::kRequest, static_cast<uint16_t>(opcode), seq,
               payload);
}

// Builds up a reply backlog it never reads: the overflow policy must cut it
// (and only it) off.
void StallerClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  ResourceId id_base = RawSetup(stream.get(), "staller-" + std::to_string(index));
  if (id_base == kNoResource) {
    return;
  }
  CreateSoundReq create;
  create.id = id_base;
  create.format = kTelephoneFormat;
  ByteWriter cw;
  create.Encode(&cw);
  SendReq(stream.get(), Opcode::kCreateSound, 1, cw.bytes());

  WriteSoundDataReq write;
  write.id = id_base;
  write.data.assign(32 * 1024, 0x55);
  ByteWriter ww;
  write.Encode(&ww);
  SendReq(stream.get(), Opcode::kWriteSoundData, 2, ww.bytes());

  ReadSoundDataReq read;
  read.id = id_base;
  read.length = 32 * 1024;
  ByteWriter rw;
  read.Encode(&rw);
  for (uint32_t i = 0; i < 200; ++i) {
    SendReq(stream.get(), Opcode::kReadSoundData, 3 + i, rw.bytes());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stream->Close();
}

void FlooderClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  if (RawSetup(stream.get(), "flooder-" + std::to_string(index)) == kNoResource) {
    return;
  }
  std::vector<uint8_t> junk(64, static_cast<uint8_t>(index));
  for (uint32_t i = 0; i < 400; ++i) {
    SendReq(stream.get(), static_cast<Opcode>(200 + i % 17), i, junk);
  }
  stream->Close();
}

void TruncatorClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  std::vector<uint8_t> garbage(7 + index % 11, 0xEE);
  stream->Write(garbage);
  stream->Close();
}

// Dies between a header and its payload (the loop's Framer is left
// mid-frame), then again after a partial payload.
void MidFrameKillerClient(uint16_t port, int index) {
  for (size_t cut : {size_t{0}, size_t{5}}) {
    auto stream = ConnectTcp("127.0.0.1", port);
    if (stream == nullptr) {
      return;
    }
    if (RawSetup(stream.get(), "killer-" + std::to_string(index)) == kNoResource) {
      return;
    }
    std::vector<uint8_t> frame =
        FrameMessage(MessageType::kRequest, 3, 1, std::vector<uint8_t>(64, 0xAA));
    stream->Write(std::span<const uint8_t>(frame).first(kHeaderSize + cut));
    stream->Close();
  }
}

void NormalClient(uint16_t port, int index) {
  ConnectRetryOptions retry;
  retry.attempts = 10;
  retry.backoff_ms = 10;
  retry.jitter_seed = kSeed + static_cast<uint64_t>(index);
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port,
                                            "normal-" + std::to_string(index), retry);
  if (conn == nullptr) {
    return;
  }
  conn->set_rpc_deadline_ms(5000);
  for (int round = 0; round < 3; ++round) {
    ResourceId loud = conn->CreateLoud(kNoResource, {});
    conn->CreateDevice(loud, DeviceClass::kOutput, {});
    if (!conn->Sync().ok()) {
      break;  // server cut us off under pressure; acceptable
    }
    conn->DestroyLoud(loud);
  }
  conn->Close();
}

// Current thread count of this process, or -1 when /proc is unavailable.
int ProcessThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  int threads = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) {
      break;
    }
  }
  std::fclose(f);
  return threads;
}

ServerStatsReply StatsOf(AudioServer* server) {
  MutexLock lock(&server->mutex());
  return server->state().BuildServerStats(false);
}

bool WaitForReclaim(AudioServer* server, size_t want_objects) {
  for (int i = 0; i < 500; ++i) {
    size_t objects;
    int64_t open;
    {
      MutexLock lock(&server->mutex());
      objects = server->state().object_count();
      open = server->state().BuildServerStats(false).connections_open;
    }
    if (open == 0 && objects == want_objects) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// ---------------------------------------------------------------------------
// EventLoop unit coverage: both backends through the bare interface.

class EventLoopTest : public ::testing::TestWithParam<EventLoopOptions::Backend> {};

TEST_P(EventLoopTest, DispatchesReadinessAndInterestChanges) {
  EventLoopOptions options;
  options.backend = GetParam();
  options.wait_timeout_ms = 10;
  EventLoop loop(options);
  ASSERT_TRUE(loop.Start());

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<int> readable{0};
  std::atomic<int> writable{0};
  loop.Add(fds[0], [&](uint32_t events) {
    if ((events & kLoopReadable) != 0) {
      uint8_t buf[16];
      while (::recv(fds[0], buf, sizeof(buf), MSG_DONTWAIT) > 0) {
      }
      readable.fetch_add(1);
    }
    if ((events & kLoopWritable) != 0) {
      writable.fetch_add(1);
      loop.SetWantWrite(fds[0], false);  // one-shot, from the handler itself
    }
  });

  // Readability: a byte from the peer must reach the handler.
  uint8_t one = 1;
  ASSERT_EQ(::send(fds[1], &one, 1, 0), 1);
  for (int i = 0; i < 200 && readable.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(readable.load(), 1);

  // Cross-thread write arming: an idle socket is immediately writable.
  loop.SetWantWrite(fds[0], true);
  for (int i = 0; i < 200 && writable.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(writable.load(), 1);

  // After Remove, further readiness must not reach the handler.
  loop.Remove(fds[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int readable_after_remove = readable.load();
  ASSERT_EQ(::send(fds[1], &one, 1, 0), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(readable.load(), readable_after_remove);

  loop.Stop();
  loop.Stop();  // idempotent
  ::close(fds[0]);
  ::close(fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(EventLoopOptions::Backend::kAuto,
                                           EventLoopOptions::Backend::kPoll));

// ---------------------------------------------------------------------------
// Loop-plane server behavior.

TEST(EventLoopPlane, ServesClientsAndReportsLoopStats) {
  ServerOptions options;
  options.connection_threads = 2;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_EQ(server.connection_loops(), 2u);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  std::vector<std::unique_ptr<AudioConnection>> clients;
  for (int i = 0; i < 6; ++i) {
    auto conn =
        AudioConnection::OpenTcp("127.0.0.1", port, "loop-" + std::to_string(i));
    ASSERT_NE(conn, nullptr);
    ResourceId loud = conn->CreateLoud(kNoResource, {});
    conn->CreateDevice(loud, DeviceClass::kOutput, {});
    ASSERT_TRUE(conn->Sync().ok());
    clients.push_back(std::move(conn));
  }

  // The stats reply carries the v6 loop plane: both loops up, every client
  // fd watched, wait syscalls accumulating.
  auto wire = clients[0]->GetServerStats(false);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  const ServerStatsReply& s = wire.value();
  EXPECT_EQ(s.stats_version, kServerStatsVersion);
  EXPECT_EQ(s.loops, 2u);
  EXPECT_GE(s.fds_watched, 6);
  EXPECT_GT(s.epoll_waits, 0u);
  EXPECT_EQ(s.connections_open, 6);
  EXPECT_GT(s.loop_dispatch_us.count, 0u);

  for (auto& conn : clients) {
    conn->Close();
  }
  clients.clear();
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const ServerStatsReply now = StatsOf(&server);
    drained = now.connections_open == 0 && now.fds_watched == 0;
  }
  const ServerStatsReply end = StatsOf(&server);
  EXPECT_TRUE(drained) << "open=" << end.connections_open
                       << " fds_watched=" << end.fds_watched;
  server.Shutdown();
}

TEST(EventLoopPlane, PollBackendServesClients) {
  ServerOptions options;
  options.connection_threads = 2;
  options.loop_use_poll = true;  // portable fallback, forced on Linux too
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();

  auto conn = AudioConnection::OpenTcp("127.0.0.1", server.tcp_port(), "poll-client");
  ASSERT_NE(conn, nullptr);
  ResourceId loud = conn->CreateLoud(kNoResource, {});
  conn->CreateDevice(loud, DeviceClass::kOutput, {});
  ASSERT_TRUE(conn->Sync().ok());
  auto stats = conn->GetServerStats(false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().loops, 2u);
  EXPECT_GT(stats.value().epoll_waits, 0u);  // poll(2) waits count here too
  conn->Close();
  server.Shutdown();
}

TEST(EventLoopPlane, ThreadCountDoesNotGrowWithClients) {
  const int probe = ProcessThreadCount();
  if (probe < 0) {
    GTEST_SKIP() << "/proc/self/status unavailable";
  }
  ServerOptions options;
  options.connection_threads = 2;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int threads_idle = ProcessThreadCount();
  ASSERT_GT(threads_idle, 0);

  // Raw clients (no Alib reader threads in this process): every accepted
  // connection must be multiplexed, not given threads of its own.
  std::vector<std::unique_ptr<ByteStream>> clients;
  for (int i = 0; i < 16; ++i) {
    auto stream = ConnectTcp("127.0.0.1", port);
    ASSERT_NE(stream, nullptr);
    ASSERT_NE(RawSetup(stream.get(), "counted-" + std::to_string(i)), kNoResource);
    clients.push_back(std::move(stream));
  }
  EXPECT_EQ(StatsOf(&server).connections_open, 16);
  const int threads_loaded = ProcessThreadCount();
  EXPECT_EQ(threads_loaded, threads_idle)
      << "16 loop-plane clients changed the process thread count";

  for (auto& stream : clients) {
    stream->Close();
  }
  clients.clear();
  server.Shutdown();
}

TEST(EventLoopPlane, MidReadinessClientDeathReclaimsEverything) {
  ServerOptions options;
  options.connection_threads = 2;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();
  size_t objects_before;
  {
    MutexLock lock(&server.mutex());
    objects_before = server.state().object_count();
  }

  // A client that creates a server-side object, then dies mid-frame: the
  // loop sees EOF with the Framer mid-payload and must reclaim the sound.
  auto stream = ConnectTcp("127.0.0.1", port);
  ASSERT_NE(stream, nullptr);
  ResourceId id_base = RawSetup(stream.get(), "doomed");
  ASSERT_NE(id_base, kNoResource);
  CreateSoundReq create;
  create.id = id_base;
  create.format = kTelephoneFormat;
  ByteWriter cw;
  create.Encode(&cw);
  SendReq(stream.get(), Opcode::kCreateSound, 1, cw.bytes());
  std::vector<uint8_t> frame =
      FrameMessage(MessageType::kRequest, 3, 2, std::vector<uint8_t>(128, 0xAB));
  stream->Write(std::span<const uint8_t>(frame).first(kHeaderSize + 17));
  stream->Close();
  stream.reset();

  EXPECT_TRUE(WaitForReclaim(&server, objects_before))
      << "open=" << StatsOf(&server).connections_open;
  server.Shutdown();
}

class EventLoopOverflow : public ::testing::TestWithParam<EgressOverflowPolicy> {};

TEST_P(EventLoopOverflow, SlowClientIsCutOffAndReclaimed) {
  // Replies are never shed under either policy, so a reply backlog past the
  // budget must disconnect the staller on the loop path — kDropEvents may
  // shed queued events first, kDisconnect cuts straight away.
  ServerOptions options;
  options.connection_threads = 2;
  options.egress_buffer_bytes = 8 * 1024;
  options.egress_overflow = GetParam();
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();
  size_t objects_before;
  {
    MutexLock lock(&server.mutex());
    objects_before = server.state().object_count();
  }

  StallerClient(port, 0);

  const ServerStatsReply after = StatsOf(&server);
  EXPECT_GE(after.egress_disconnects, 1u);
  EXPECT_TRUE(WaitForReclaim(&server, objects_before))
      << "open=" << StatsOf(&server).connections_open;

  // The cut-off was surgical: a fresh client is served normally.
  auto fresh = AudioConnection::OpenTcp("127.0.0.1", port, "fresh");
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Sync().ok());
  fresh->Close();
  server.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Policies, EventLoopOverflow,
                         ::testing::Values(EgressOverflowPolicy::kDropEvents,
                                           EgressOverflowPolicy::kDisconnect));

// The decision-11 chaos contract, re-run with the connection plane
// multiplexed: 25 hostile clients against 2 loop threads.
void RunHostileMix(bool edge_triggered) {
  ServerOptions options;
  options.egress_buffer_bytes = 8 * 1024;  // small: overflow must trigger
  options.engine_threads = 2;
  options.connection_threads = 2;
  options.loop_edge_triggered = edge_triggered;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const ServerStatsReply idle = StatsOf(&server);
  ASSERT_GT(idle.ticks_run, 0u);
  const double idle_p99 = idle.tick_us.empty() ? 0.0 : idle.tick_us.Percentile(99);
  size_t objects_before;
  {
    MutexLock lock(&server.mutex());
    objects_before = server.state().object_count();
  }

  constexpr int kClients = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port, i] {
      switch (i % 5) {
        case 0: NormalClient(port, i); break;
        case 1: StallerClient(port, i); break;
        case 2: FlooderClient(port, i); break;
        case 3: TruncatorClient(port, i); break;
        case 4: MidFrameKillerClient(port, i); break;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  const ServerStatsReply after = StatsOf(&server);
  EXPECT_GT(after.ticks_run, idle.ticks_run);
  EXPECT_GE(after.egress_disconnects, 1u);
  EXPECT_GT(after.requests_total, idle.requests_total);
  EXPECT_GT(after.request_errors_total, 0u);
  EXPECT_EQ(after.loops, 2u);

  // Still serving; the loop plane reports over the wire.
  ConnectRetryOptions retry;
  retry.attempts = 20;
  retry.backoff_ms = 10;
  auto fresh = AudioConnection::OpenTcpRetry("127.0.0.1", port, "survivor", retry);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Sync().ok());
  auto wire_stats = fresh->GetServerStats(false);
  ASSERT_TRUE(wire_stats.ok()) << wire_stats.status().ToString();
  EXPECT_GE(wire_stats.value().egress_disconnects, 1u);
  fresh->Close();

  // Full reclamation: gauge to zero, registry back to its pre-chaos size,
  // and no fd left watched by any loop.
  bool reclaimed = false;
  for (int i = 0; i < 500 && !reclaimed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const ServerStatsReply now = StatsOf(&server);
    size_t objects;
    {
      MutexLock lock(&server.mutex());
      objects = server.state().object_count();
    }
    reclaimed = now.connections_open == 0 && now.fds_watched == 0 &&
                objects == objects_before;
  }
  EXPECT_TRUE(reclaimed) << "open=" << StatsOf(&server).connections_open
                         << " fds_watched=" << StatsOf(&server).fds_watched;

  const double p99 = after.tick_us.empty() ? 0.0 : after.tick_us.Percentile(99);
  EXPECT_LE(p99, std::max(2.0 * idle_p99, 20000.0));

  server.Shutdown();
}

TEST(EventLoopPlane, SurvivesHostileClientMixLevelTriggered) {
  RunHostileMix(/*edge_triggered=*/false);
}

TEST(EventLoopPlane, SurvivesHostileClientMixEdgeTriggered) {
  RunHostileMix(/*edge_triggered=*/true);
}

TEST(EventLoopPlane, SerialAndParallelEnginesStayBitIdentical) {
  // Decision 7/12's bit-identity contract, with requests arriving through
  // the loop plane instead of reader threads: the transport swap must not
  // perturb engine output. A hostile flooder rides along on both runs.
  std::vector<Sample> captures[2];
  for (int threads : {1, 4}) {
    BoardConfig config;
    ServerOptions options;
    options.engine_threads = threads;
    options.connection_threads = 2;
    Board board(config);
    AudioServer server(&board, options);
    board.speakers()[0]->set_capture_output(true);
    ASSERT_TRUE(server.ListenTcp(0));
    const uint16_t port = server.tcp_port();

    auto client = AudioConnection::OpenTcp("127.0.0.1", port, "player");
    ASSERT_NE(client, nullptr);
    AudioToolkit toolkit(client.get());
    toolkit.set_time_pump([&] { server.StepFrames(160); });

    std::vector<Sample> pcm(4000);
    for (size_t i = 0; i < pcm.size(); ++i) {
      pcm[i] = static_cast<Sample>(6000.0 * std::sin(0.2 * static_cast<double>(i)));
    }
    ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
    auto chain = toolkit.BuildPlaybackChain();
    client->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
    client->StartQueue(chain.loud);
    ASSERT_TRUE(client->Sync().ok());

    auto hostile = ConnectTcp("127.0.0.1", port);
    ASSERT_NE(hostile, nullptr);
    ASSERT_NE(RawSetup(hostile.get(), "hostile"), kNoResource);
    std::atomic<bool> stop{false};
    std::thread hostile_thread([&] {
      std::vector<uint8_t> junk(32, 0xBD);
      uint32_t seq = 1;
      while (!stop.load()) {
        SendReq(hostile.get(), static_cast<Opcode>(230 + seq % 7), seq, junk);
        ++seq;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    server.StepFrames(160 * 40);  // 800 ms: the whole sound plus completion

    stop.store(true);
    hostile_thread.join();
    hostile->Close();
    captures[threads == 1 ? 0 : 1] = board.speakers()[0]->played();
    client->Close();
    server.Shutdown();
  }
  EXPECT_GT(Rms(captures[0]), 0.0) << "workload was silent";
  ASSERT_EQ(captures[0].size(), captures[1].size());
  EXPECT_TRUE(captures[0] == captures[1])
      << "parallel engine output diverged from serial on the loop plane";
}

}  // namespace
}  // namespace aud
