// Recognition-substrate tests: features, DTW, endpointing and the word
// recognizer. Synthetic "words" are built from the TTS engine so the
// whole path is self-contained.

#include <gtest/gtest.h>

#include "src/recognize/dtw.h"
#include "src/recognize/endpoint.h"
#include "src/recognize/features.h"
#include "src/recognize/recognizer.h"
#include "src/dsp/tone.h"
#include "src/synth/synthesizer.h"

namespace aud {
namespace {

constexpr uint32_t kRate = 8000;

std::vector<Sample> Speak(const std::string& text, double pitch = 110.0) {
  TextToSpeech tts(kRate);
  tts.parameters().pitch_hz = pitch;
  return tts.Synthesize(text);
}

TEST(FeaturesTest, FrameCountMatchesDuration) {
  std::vector<Sample> second(kRate, 1000);
  auto features = ExtractFeatures(second, kRate);
  EXPECT_EQ(features.size(), 50u);  // 20 ms frames
}

TEST(FeaturesTest, SilenceHasLowEnergy) {
  std::vector<Sample> silence(1600, 0);
  auto features = ExtractFeatures(silence, kRate);
  for (const auto& f : features) {
    EXPECT_LT(f[0], -6.0);  // log energy of silence
  }
}

TEST(FeaturesTest, BandEnergiesSeparateLowAndHighTones) {
  auto features_of = [](double freq) {
    std::vector<Sample> tone;
    SineOscillator osc(freq, kRate, 0.5);
    osc.Generate(160, &tone);
    return ExtractFrameFeatures(tone, kRate);
  };
  auto low = features_of(250);
  auto high = features_of(3400);
  EXPECT_GT(low[2], low[7]);   // energy in the lowest band
  EXPECT_GT(high[7], high[2]); // energy in the highest band
}

TEST(FeaturesTest, DistanceIsZeroForIdentical) {
  FeatureVector f{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(FeatureDistance(f, f), 0.0);
}

TEST(DtwTest, IdenticalSequencesHaveZeroDistance) {
  auto audio = Speak("hello");
  auto features = ExtractFeatures(audio, kRate);
  EXPECT_NEAR(DtwDistance(features, features), 0.0, 1e-9);
}

TEST(DtwTest, EmptySequenceIsInfinite) {
  auto features = ExtractFeatures(Speak("hello"), kRate);
  EXPECT_EQ(DtwDistance({}, features), kDtwInfinity);
  EXPECT_EQ(DtwDistance(features, {}), kDtwInfinity);
}

TEST(DtwTest, ExtremeLengthRatioRejected) {
  auto a = ExtractFeatures(Speak("a"), kRate);
  std::vector<FeatureVector> lots(a.size() * 5, a[0]);
  EXPECT_EQ(DtwDistance(a, lots), kDtwInfinity);
}

TEST(DtwTest, TimeWarpedVersionIsCloserThanDifferentWord) {
  TextToSpeech normal(kRate);
  auto word = normal.Synthesize("telephone");
  TextToSpeech slow(kRate);
  slow.parameters().speaking_rate = 0.8;
  auto stretched = slow.Synthesize("telephone");
  auto other = normal.Synthesize("goodbye");

  auto f_word = ExtractFeatures(word, kRate);
  auto f_stretched = ExtractFeatures(stretched, kRate);
  auto f_other = ExtractFeatures(other, kRate);
  EXPECT_LT(DtwDistance(f_word, f_stretched), DtwDistance(f_word, f_other));
}

TEST(EndpointTest, SegmentsTwoUtterances) {
  auto word = Speak("yes");
  std::vector<Sample> stream(4000, 0);  // 0.5 s leading silence
  stream.insert(stream.end(), word.begin(), word.end());
  stream.insert(stream.end(), 4000, 0);
  stream.insert(stream.end(), word.begin(), word.end());
  stream.insert(stream.end(), 4000, 0);

  Endpointer endpointer(kRate);
  std::vector<std::vector<Sample>> utterances;
  endpointer.Process(stream,
                     [&](std::vector<Sample> u) { utterances.push_back(std::move(u)); });
  EXPECT_EQ(utterances.size(), 2u);
  for (const auto& u : utterances) {
    EXPECT_GT(u.size(), 800u);
  }
}

TEST(EndpointTest, IgnoresShortClicks) {
  std::vector<Sample> stream(4000, 0);
  // A 30 ms click.
  for (int i = 0; i < 240; ++i) {
    stream[1000 + i] = 20000;
  }
  stream.insert(stream.end(), 8000, 0);
  Endpointer endpointer(kRate);
  int count = 0;
  endpointer.Process(stream, [&](std::vector<Sample>) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(EndpointTest, CapsUtteranceLength) {
  Endpointer endpointer(kRate, {.speech_threshold = 0.02,
                                .end_silence_ms = 250,
                                .min_utterance_ms = 100,
                                .max_utterance_ms = 1000});
  std::vector<Sample> endless(kRate * 5, 10000);
  int count = 0;
  endpointer.Process(endless, [&](std::vector<Sample> u) {
    ++count;
    EXPECT_LE(u.size(), kRate + 320u);
  });
  EXPECT_GE(count, 4);
}

class RecognizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Train three words with two slightly different voicings each.
    for (const char* word : {"play", "rewind", "goodbye"}) {
      recognizer_.Train(word, Speak(word, 110.0));
      recognizer_.Train(word, Speak(word, 120.0));
    }
  }

  WordRecognizer recognizer_{kRate};
};

TEST_F(RecognizerTest, RecognizesTrainedWords) {
  for (const char* word : {"play", "rewind", "goodbye"}) {
    auto result = recognizer_.RecognizeUtterance(Speak(word, 115.0));
    ASSERT_TRUE(result.has_value()) << word;
    EXPECT_EQ(result->word, word);
    EXPECT_GT(result->score, 1000u);
  }
}

TEST_F(RecognizerTest, VocabularyRestrictsMatches) {
  recognizer_.SetVocabulary({"play"});
  auto result = recognizer_.RecognizeUtterance(Speak("rewind", 115.0));
  // "rewind" is out of vocabulary: either rejected or not labeled rewind.
  if (result.has_value()) {
    EXPECT_EQ(result->word, "play");
  }
}

TEST_F(RecognizerTest, ContextNarrowsWithinVocabulary) {
  recognizer_.SetVocabulary({"play", "rewind", "goodbye"});
  recognizer_.AdjustContext({"goodbye"});
  auto result = recognizer_.RecognizeUtterance(Speak("goodbye", 115.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->word, "goodbye");
}

TEST_F(RecognizerTest, StreamingModeEndpointsAndRecognizes) {
  auto word = Speak("rewind", 115.0);
  std::vector<Sample> stream(4000, 0);
  stream.insert(stream.end(), word.begin(), word.end());
  stream.insert(stream.end(), 8000, 0);

  std::vector<RecognitionResult> results;
  recognizer_.ProcessStream(stream,
                            [&](const RecognitionResult& r) { results.push_back(r); });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].word, "rewind");
}

TEST_F(RecognizerTest, TemplatesSaveAndLoad) {
  auto blob = recognizer_.SaveTemplates();
  EXPECT_FALSE(blob.empty());

  WordRecognizer fresh(kRate);
  ASSERT_TRUE(fresh.LoadTemplates(blob));
  EXPECT_EQ(fresh.template_count(), recognizer_.template_count());
  EXPECT_EQ(fresh.trained_words(), recognizer_.trained_words());

  auto result = fresh.RecognizeUtterance(Speak("play", 115.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->word, "play");
}

TEST_F(RecognizerTest, CorruptTemplateBlobRejected) {
  auto blob = recognizer_.SaveTemplates();
  blob.resize(blob.size() / 2);
  WordRecognizer fresh(kRate);
  EXPECT_FALSE(fresh.LoadTemplates(blob));
  EXPECT_EQ(fresh.template_count(), 0u);
}

TEST(RecognizerEdgeTest, EmptyUtteranceRejected) {
  WordRecognizer recognizer(kRate);
  recognizer.Train("x", Speak("x"));
  EXPECT_FALSE(recognizer.RecognizeUtterance({}).has_value());
}

TEST(RecognizerEdgeTest, UntrainedRecognizerRejectsEverything) {
  WordRecognizer recognizer(kRate);
  EXPECT_FALSE(recognizer.RecognizeUtterance(Speak("anything")).has_value());
}

}  // namespace
}  // namespace aud
