// Command-queue semantics (section 5.5): sequential processing, CoBegin/
// CoEnd simultaneity, Delay/DelayEnd, queue states, pause propagation,
// and the paper's worked examples.

#include <gtest/gtest.h>

#include "src/dsp/gain.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class QueueTest : public ServerFixture {
 protected:
  struct TwoPlayerChain {
    ResourceId loud;
    ResourceId player1;
    ResourceId player2;
    ResourceId output;
  };

  // Two players mixed onto one speaker inside a single LOUD (the paper's
  // CoBegin example plays two sounds through a mixer).
  TwoPlayerChain BuildTwoPlayers() {
    TwoPlayerChain chain;
    chain.loud = client_->CreateLoud(kNoResource, {});
    chain.player1 = client_->CreateDevice(chain.loud, DeviceClass::kPlayer, {});
    chain.player2 = client_->CreateDevice(chain.loud, DeviceClass::kPlayer, {});
    AttrList mixer_attrs;
    mixer_attrs.SetU32(AttrTag::kInputPorts, 2);
    ResourceId mixer = client_->CreateDevice(chain.loud, DeviceClass::kMixer, mixer_attrs);
    chain.output = client_->CreateDevice(chain.loud, DeviceClass::kOutput, {});
    client_->CreateWire(chain.player1, 0, mixer, 0);
    client_->CreateWire(chain.player2, 0, mixer, 1);
    client_->CreateWire(mixer, 0, chain.output, 0);
    client_->SelectEvents(chain.loud, kQueueEvents);
    client_->MapLoud(chain.loud);
    return chain;
  }

  ResourceId MakeDcSound(Sample value, int ms) {
    std::vector<Sample> pcm(static_cast<size_t>(8) * ms, value);
    return toolkit_->UploadSound(pcm, {Encoding::kPcm16, 8000});
  }
};

TEST_F(QueueTest, CommandsRunSequentially) {
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 100);
  ResourceId b = MakeDcSound(2000, 100);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1),
                                PlayCommand(chain.player2, b, 2)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(2));
  StepMs(200);

  // Sequential: no sample carries both streams mixed (3000).
  const auto& played = board_->speakers()[0]->played();
  int overlap = 0;
  int first = 0;
  int second = 0;
  for (Sample s : played) {
    if (s == 3000) {
      ++overlap;
    }
    if (s == 1000) {
      ++first;
    }
    if (s == 2000) {
      ++second;
    }
  }
  EXPECT_EQ(overlap, 0);
  EXPECT_EQ(first, 800);
  EXPECT_EQ(second, 800);
}

TEST_F(QueueTest, CoBeginStartsSimultaneously) {
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 100);
  ResourceId b = MakeDcSound(2000, 100);
  // The paper's example: cobegin play A, play B coend.
  client_->Enqueue(chain.loud,
                   {CoBeginCommand(), PlayCommand(chain.player1, a, 1),
                    PlayCommand(chain.player2, b, 2), CoEndCommand()});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(2));
  StepMs(200);

  const auto& played = board_->speakers()[0]->played();
  int overlap = 0;
  for (Sample s : played) {
    if (s == 3000) {
      ++overlap;
    }
  }
  // Both 100 ms streams fully overlap: 800 mixed samples.
  EXPECT_EQ(overlap, 800);
}

TEST_F(QueueTest, CommandAfterCoEndWaitsForAllBranches) {
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  // Marker values chosen so that no mix of two equals another marker.
  ResourceId a = MakeDcSound(1000, 50);     // short
  ResourceId b = MakeDcSound(4000, 200);    // long
  ResourceId c = MakeDcSound(16000, 50);    // "play C" after coend
  client_->Enqueue(chain.loud,
                   {CoBeginCommand(), PlayCommand(chain.player1, a, 1),
                    PlayCommand(chain.player2, b, 2), CoEndCommand(),
                    PlayCommand(chain.player1, c, 3)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3));
  StepMs(300);

  // C (16000) must never overlap with B (4000): no 20000 mix values.
  const auto& played = board_->speakers()[0]->played();
  for (Sample s : played) {
    ASSERT_NE(s, 20000) << "command after CoEnd started before all branches finished";
  }
  // And C did play exactly once, alone.
  int c_count = 0;
  for (Sample s : played) {
    if (s == 16000) {
      ++c_count;
    }
  }
  EXPECT_EQ(c_count, 400);
}

TEST_F(QueueTest, DelayedSegmentRunsConcurrentlyWithinCoBegin) {
  // The paper's second example: cobegin { play A ; delay 5s { play B; stop
  // 1 } delayend } coend -- B starts 5 s in while A still plays; A is then
  // stopped.
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 2000);  // 2 s
  ResourceId b = MakeDcSound(2000, 200);
  client_->Enqueue(chain.loud,
                   {CoBeginCommand(), PlayCommand(chain.player1, a, 1),
                    DelayCommand(500),  // scaled-down 0.5 s delay
                    PlayCommand(chain.player2, b, 2), StopCommand(chain.player1, 3),
                    DelayEndCommand(), CoEndCommand()});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 30000));
  StepMs(300);

  const auto& played = board_->speakers()[0]->played();
  // Phase 1: A alone (~0.5 s of 1000).
  int a_alone = 0;
  int mixed = 0;
  for (Sample s : played) {
    if (s == 1000) {
      ++a_alone;
    }
    if (s == 3000) {
      ++mixed;
    }
  }
  EXPECT_NEAR(a_alone, 4000, 200);  // ~0.5 s before B starts
  // B (200 ms) overlaps A until A is stopped right after B completes.
  EXPECT_NEAR(mixed, 1600, 200);
}

TEST_F(QueueTest, QueueStateTransitionsEmitEvents) {
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 2000);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1)});

  std::vector<EventType> seen;
  auto record_events = [&] {
    EventMessage event;
    while (client_->PollEvent(&event)) {
      seen.push_back(event.type);
    }
  };

  client_->StartQueue(chain.loud);
  Flush();
  StepMs(100);
  client_->PauseQueue(chain.loud);
  Flush();
  auto paused = client_->QueryQueue(chain.loud);
  ASSERT_TRUE(paused.ok());
  EXPECT_EQ(paused.value().state, QueueState::kClientPaused);

  client_->ResumeQueue(chain.loud);
  Flush();
  client_->StopQueue(chain.loud);
  Flush();
  record_events();

  EXPECT_NE(std::find(seen.begin(), seen.end(), EventType::kQueueStarted), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), EventType::kQueuePaused), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), EventType::kQueueResumed), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), EventType::kQueueStopped), seen.end());
}

TEST_F(QueueTest, PauseHaltsAudioAndResumeContinues) {
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 400);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(100);
  client_->PauseQueue(chain.loud);
  Flush();
  size_t at_pause = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 1000) {
      ++at_pause;
    }
  }
  StepMs(500);  // paused: nothing more plays
  size_t during_pause = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 1000) {
      ++during_pause;
    }
  }
  EXPECT_LE(during_pause - at_pause, 320u);  // at most in-flight codec data

  client_->ResumeQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));
  StepMs(200);
  size_t total = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 1000) {
      ++total;
    }
  }
  EXPECT_EQ(total, 3200u);  // all 400 ms eventually played, none lost
}

TEST_F(QueueTest, StopAbortsCurrentAndKeepsRemaining) {
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 5000);
  ResourceId b = MakeDcSound(2000, 50);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1),
                                PlayCommand(chain.player1, b, 2)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(100);
  client_->StopQueue(chain.loud);
  Flush();

  // First command reported done (aborted).
  auto done1 = toolkit_->WaitFor(
      [](const EventMessage& e) {
        return e.type == EventType::kCommandDone &&
               CommandDoneArgs::Decode(e.args).tag == 1;
      },
      5000);
  ASSERT_TRUE(done1.has_value());
  EXPECT_EQ(CommandDoneArgs::Decode(done1->args).aborted, 1);

  // Remaining command still queued; restarting runs it.
  auto state = client_->QueryQueue(chain.loud);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().depth, 1u);
  client_->StartQueue(chain.loud);
  Flush();
  EXPECT_TRUE(toolkit_->WaitCommandDone(2));
}

TEST_F(QueueTest, FlushDropsPendingCommands) {
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(1000, 50);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1),
                                PlayCommand(chain.player1, a, 2),
                                PlayCommand(chain.player1, a, 3)});
  client_->FlushQueue(chain.loud);
  Flush();
  auto state = client_->QueryQueue(chain.loud);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().depth, 0u);
}

TEST_F(QueueTest, MalformedNestingRejected) {
  auto chain = BuildTwoPlayers();
  client_->Enqueue(chain.loud, {CoEndCommand()});
  ExpectError(ErrorCode::kBadQueue);
  client_->Enqueue(chain.loud, {DelayEndCommand()});
  ExpectError(ErrorCode::kBadQueue);
}

TEST_F(QueueTest, QueuedChangeGainBetweenPlays) {
  // The paper's footnote 4: Play, ChangeGain, Play all queued.
  board_->speakers()[0]->set_capture_output(true);
  auto chain = BuildTwoPlayers();
  ResourceId a = MakeDcSound(10000, 50);
  client_->Enqueue(chain.loud,
                   {PlayCommand(chain.player1, a, 1),
                    ChangeGainCommand(chain.player1, kUnityGain / 2, 2),
                    PlayCommand(chain.player1, a, 3)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3));
  StepMs(200);

  const auto& played = board_->speakers()[0]->played();
  int full = 0;
  int half = 0;
  for (Sample s : played) {
    if (s == 10000) {
      ++full;
    }
    if (s == 5000) {
      ++half;
    }
  }
  EXPECT_EQ(full, 400);
  EXPECT_EQ(half, 400);
}

TEST_F(QueueTest, QueueOnUnmappedLoudDoesNotRun) {
  auto chain = BuildTwoPlayers();
  client_->UnmapLoud(chain.loud);
  ResourceId a = MakeDcSound(1000, 50);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player1, a, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(500);
  auto state = client_->QueryQueue(chain.loud);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().depth, 1u);  // nothing executed while inactive

  // Mapping lets it run.
  client_->MapLoud(chain.loud);
  Flush();
  EXPECT_TRUE(toolkit_->WaitCommandDone(1));
}

}  // namespace
}  // namespace aud
