// Concurrency stress: a real-time engine plus several client threads
// churning resources, playback and the active stack simultaneously. Under
// TSan/ASan builds this is the main data-race detector; in normal builds
// it verifies nothing deadlocks or corrupts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {
namespace {

TEST(StressTest, ConcurrentClientsUnderRealtimeEngine) {
  Board board(BoardConfig{.speakers = 2, .phone_lines = 2});
  AudioServer server(&board);
  server.StartRealtime();

  constexpr int kThreads = 6;
  constexpr auto kDuration = std::chrono::milliseconds(1500);
  std::atomic<int> operations{0};
  std::atomic<bool> failed{false};

  auto worker = [&](int index) {
    auto [client_end, server_end] = CreatePipePair();
    server.AddConnection(std::move(server_end));
    auto client = AudioConnection::Open(std::move(client_end), "stress-" + std::to_string(index));
    if (client == nullptr) {
      failed.store(true);
      return;
    }
    AudioToolkit toolkit(client.get());

    auto deadline = std::chrono::steady_clock::now() + kDuration;
    uint32_t round = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      ++round;
      switch ((index + round) % 4) {
        case 0: {  // build/play/tear down a chain
          std::vector<Sample> pcm(400, static_cast<Sample>(100 * index));
          ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
          auto chain = toolkit.BuildPlaybackChain();
          client->Enqueue(chain.loud, {PlayCommand(chain.player, sound, round)});
          client->StartQueue(chain.loud);
          (void)client->Sync();
          client->DestroyLoud(chain.loud);
          client->DestroySound(sound);
          break;
        }
        case 1: {  // map/unmap churn on a phone LOUD
          ResourceId loud = client->CreateLoud(kNoResource, {});
          client->CreateDevice(loud, DeviceClass::kTelephone, {});
          client->MapLoud(loud);
          client->UnmapLoud(loud);
          client->DestroyLoud(loud);
          break;
        }
        case 2: {  // queries and properties
          (void)client->QueryDeviceLoud();
          (void)client->QueryActiveStack();
          ResourceId loud = client->CreateLoud(kNoResource, {});
          std::vector<uint8_t> value = {1, 2, 3};
          client->ChangeProperty(loud, "P", "T", value);
          (void)client->GetProperty(loud, "P");
          client->DestroyLoud(loud);
          break;
        }
        default: {  // error-path hammering
          client->DestroyLoud(0xDEADBEEF);
          client->StartQueue(0x12345);
          AsyncError error;
          (void)client->Sync();
          while (client->NextError(&error)) {
          }
          break;
        }
      }
      if (!client->Sync().ok()) {
        failed.store(true);
        return;
      }
      operations.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(worker, i);
  }
  for (auto& t : threads) {
    t.join();
  }
  server.StopRealtime();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(operations.load(), kThreads * 5);
  // The server is still coherent: a fresh client can do real work.
  auto [client_end, server_end] = CreatePipePair();
  server.AddConnection(std::move(server_end));
  auto survivor = AudioConnection::Open(std::move(client_end), "survivor");
  ASSERT_NE(survivor, nullptr);
  EXPECT_TRUE(survivor->Sync().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace aud
