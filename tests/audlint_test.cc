// Unit tests for the audlint protocol drift checker (tools/audlint_core.cc).
//
// Each test builds a small in-memory fixture tree — a fake protocol with two
// opcodes wired end to end — and then mutates one layer to prove the linter
// catches exactly that class of drift. The real tree is linted by the
// `audlint` ctest (tools/audlint.cc); these tests prove the checker would
// actually fail if someone added opcode 44 without its counterparts.

#include "tools/audlint_core.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace aud {
namespace audlint {
namespace {

using FileMap = std::map<std::string, std::string>;

// gmock is not available in every build environment, so these stand in for
// Contains(HasSubstr(...)) / IsEmpty() with messages that dump the list.
testing::AssertionResult HasProblem(const std::vector<std::string>& problems,
                                    const std::string& needle) {
  for (const std::string& p : problems) {
    if (p.find(needle) != std::string::npos) {
      return testing::AssertionSuccess();
    }
  }
  auto result = testing::AssertionFailure()
                << "no problem contains \"" << needle << "\"; got "
                << problems.size() << " problem(s):";
  for (const std::string& p : problems) {
    result << "\n  " << p;
  }
  return result;
}

testing::AssertionResult NoProblems(const std::vector<std::string>& problems) {
  if (problems.empty()) {
    return testing::AssertionSuccess();
  }
  auto result = testing::AssertionFailure()
                << "expected a clean tree; got " << problems.size()
                << " problem(s):";
  for (const std::string& p : problems) {
    result << "\n  " << p;
  }
  return result;
}

// A minimal consistent tree: two opcodes (NoOp, Ping), one versioned reply.
FileMap CleanTree() {
  FileMap files;
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kOpcodeCount = 2,
};
)";
  files["protocol.cc"] = R"(
constexpr std::string_view kOpcodeNames[] = {
    "NoOp",  // 0
    "Ping",  // 1
};
)";
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["messages.cc"] = "";
  files["alib.h"] = R"(
void NoOp();
uint32_t Ping();
)";
  files["alib.cc"] = "";
  files["requests.cc"] = R"(
void AudioConnection::NoOp() { SendRequest(Opcode::kNoOp, {}); }
uint32_t AudioConnection::Ping() { return SendRequest(Opcode::kPing, {}); }
)";
  files["dispatcher.cc"] = R"(
switch (static_cast<Opcode>(message.header.code)) {
  case Opcode::kNoOp:
    break;
  case Opcode::kPing:
    break;
  case Opcode::kOpcodeCount:
    break;
}
)";
  files["PROTOCOL.md"] = R"(
### Opcode index

| opcode | name | reply |
| ------ | ---- | ----- |
| 0      | NoOp | none  |
| 1      | Ping | PingReply |

PingReply carries a single `value` counter.
)";
  files["schema.lock"] = "PingReply 1 value\n";
  files["lock_rank.h"] = R"(
enum class LockRank : int {
  kUnranked = -1,    // exempt
  kServerState = 0,  // big lock
  kEgressQueue = 2,  // per-connection outbound queue
  kLogging = 7,      // leaf
};
)";
  files["DESIGN.md"] = R"(
Some prose about locks.

   | Lock | Guards | LockRank | Rank |
   |---|---|---|---|
   | `AudioServer::mu_` | everything | `kServerState` | 0 |
   | `EgressQueue::mu_` | outbound frames | `kEgressQueue` | 2 |
   | `g_log_mu` | stderr | `kLogging` | 7 |

More prose after the table.
)";
  files["status.h"] = R"(
enum class ErrorCode : uint8_t {
  kOk = 0,
  kBadResource = 1,
  kTimeout = 2,
};
)";
  files["status.cc"] = R"(
std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kBadResource:
      return "BadResource";
    case ErrorCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}
)";
  // The PROTOCOL.md fixture needs the error-code paragraph too.
  files["PROTOCOL.md"] += R"(
Error codes: `BadResource(1)`, `Timeout(2)`. The payload is a code.
)";
  files["metrics.h"] = R"(
struct ServerMetrics {
  static constexpr size_t kOpcodes = 4;
  obs::Counter requests[kOpcodes];
  obs::Counter requests_total;
  obs::LatencyHistogram dispatch_us;
  uint64_t uptime_ms() const { return 0; }
};
)";
  files["server_state.cc"] = R"(
reply.requests_total = metrics_.requests_total.value();
for (size_t i = 0; i < ServerMetrics::kOpcodes; ++i) row.count = metrics_.requests[i].value();
)";
  files["stats_render.cc"] = R"(
RenderHistogram(out, "aud_dispatch_us", metrics.dispatch_us);
)";
  files["flight_recorder.cc"] = "";
  files["audiond.cc"] = R"(
    if (arg == "--port") { port = Next(); }
    if (arg == "--verbose") { verbose = true; }
)";
  files["audioctl.cc"] = R"(
    if (arg == "--json") { json = true; }
)";
  files["audioload.cc"] = R"(
    if (arg == "--clients") { clients = Next(); }
)";
  files["README.md"] = R"(
Run `audiond --port 7800 --verbose` and query it with `audioctl --json`,
then load it with `audioload --clients 100`.
)";
  return files;
}

TEST(AudlintTest, CleanTreePasses) {
  EXPECT_TRUE(NoProblems(LintTree(CleanTree())));
}

TEST(AudlintTest, MissingInputFileReported) {
  FileMap files = CleanTree();
  files.erase("dispatcher.cc");
  EXPECT_TRUE(HasProblem(LintTree(files), "missing input file: dispatcher.cc"));
}

TEST(AudlintTest, ParseOpcodeEnumReadsNamesAndCount) {
  std::vector<std::string> problems;
  OpcodeEnum parsed = ParseOpcodeEnum(CleanTree()["protocol.h"], &problems);
  EXPECT_TRUE(NoProblems(problems));
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].name, "NoOp");
  EXPECT_EQ(parsed.entries[1].name, "Ping");
  EXPECT_EQ(parsed.entries[1].value, 1);
  EXPECT_EQ(parsed.count, 2);
}

TEST(AudlintTest, NonDenseOpcodeValuesFlagged) {
  FileMap files = CleanTree();
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 5,
  kOpcodeCount = 2,
};
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "kPing has value 5, expected dense value 1"));
}

TEST(AudlintTest, StaleOpcodeCountFlagged) {
  FileMap files = CleanTree();
  // Opcode added but kOpcodeCount not bumped.
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kShout = 2,
  kOpcodeCount = 2,
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "kOpcodeCount is 2 but the enum lists 3 opcodes"));
}

// The headline scenario: a new opcode lands in the enum but nowhere else.
// Every unwired layer must produce its own complaint.
TEST(AudlintTest, NewOpcodeWithoutCounterpartsFailsEveryLayer) {
  FileMap files = CleanTree();
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kShout = 2,
  kOpcodeCount = 3,
};
)";
  std::vector<std::string> problems = LintTree(files);
  EXPECT_TRUE(HasProblem(problems, "kOpcodeNames has 2 entries"));
  EXPECT_TRUE(HasProblem(problems, "no `case Opcode::kShout` handler"));
  EXPECT_TRUE(HasProblem(problems, "no wrapper references Opcode::kShout"));
  EXPECT_TRUE(HasProblem(problems, "opcode index has no row for Shout"));
}

TEST(AudlintTest, NameTableOrderMismatchFlagged) {
  FileMap files = CleanTree();
  files["protocol.cc"] = R"(
constexpr std::string_view kOpcodeNames[] = {
    "Ping",
    "NoOp",
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "kOpcodeNames[0] is \"Ping\", enum says \"NoOp\""));
}

TEST(AudlintTest, SubstringOpcodeReferenceDoesNotCount) {
  FileMap files = CleanTree();
  // `Opcode::kPingExtended` must not satisfy the kPing wiring check.
  files["dispatcher.cc"] = R"(
case Opcode::kNoOp: break;
case Opcode::kPingExtended: break;
case Opcode::kOpcodeCount: break;
)";
  EXPECT_TRUE(HasProblem(LintTree(files), "no `case Opcode::kPing` handler"));
}

TEST(AudlintTest, EncodeWithoutDecodeFlagged) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
};
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "struct PingReply has Encode but no Decode"));
}

TEST(AudlintTest, DocOpcodeNumberMismatchFlagged) {
  FileMap files = CleanTree();
  files["PROTOCOL.md"] = R"(
### Opcode index

| opcode | name | reply |
| ------ | ---- | ----- |
| 0      | NoOp | none  |
| 2      | Ping | PingReply |
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "opcode index says Ping = 2, protocol.h says 1"));
}

TEST(AudlintTest, DocUnknownOpcodeFlagged) {
  FileMap files = CleanTree();
  files["PROTOCOL.md"] += "| 7 | Whisper | none |\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "lists unknown opcode Whisper = 7"));
}

TEST(AudlintTest, NumericTablesOutsideOpcodeIndexIgnored) {
  FileMap files = CleanTree();
  // Event-code style tables in later sections are not opcode rows.
  files["PROTOCOL.md"] += R"(
### Event codes

| code | event |
| ---- | ----- |
| 11   | TelephoneRing |
)";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, ParseStructFieldsSkipsMethodsAndStatics) {
  std::string header = R"(
struct PingReply {
  static constexpr int kMagic = 7;
  uint32_t value = 0;
  std::string label;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_EQ(ParseStructFields(header, "PingReply"),
            (std::vector<std::string>{"value", "label"}));
}

TEST(AudlintTest, SchemaDriftWithoutLockUpdateFlagged) {
  FileMap files = CleanTree();
  // A field appended to the struct without a new lock line.
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  uint32_t extra = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "PingReply v1 field list does not match messages.h"));
}

TEST(AudlintTest, ProperAppendOnlyEvolutionPasses) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t value = 0;
  uint32_t extra = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] = "PingReply 1 value\nPingReply 2 value extra\n";
  files["PROTOCOL.md"] += "\nVersion 2 appends an `extra` counter.\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, ReorderedFieldsBreakOldVersionPrefix) {
  FileMap files = CleanTree();
  // Fields reordered: v2 matches, but v1 is no longer a prefix.
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t extra = 0;
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] = "PingReply 1 value\nPingReply 2 extra value\n";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "v1 is not a strict prefix of the current fields"));
}

TEST(AudlintTest, VersionConstantDisagreementFlagged) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_TRUE(HasProblem(
      LintTree(files),
      "locked at version 1 but messages.h declares kPingVersion = 2"));
}

TEST(AudlintTest, LockedStructMissingFromHeaderFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] += "GhostReply 1 spooky\n";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "struct GhostReply not found in messages.h"));
}

TEST(AudlintTest, EmptySchemaLockFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] = "# nothing locked yet\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "no schemas locked"));
}

TEST(AudlintTest, MalformedLockLineFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] = "PingReply 1 value\nPingReply\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "malformed line: PingReply"));
}

// Extends the clean tree with a locked ServerStatsReply (v1 -> v2) so the
// stats doc-coverage check (check 8) has something to examine. doc_extra is
// appended to PROTOCOL.md.
FileMap TreeWithStatsReply(const std::string& doc_extra) {
  FileMap files = CleanTree();
  files["messages.h"] += R"(
inline constexpr uint32_t kServerStatsVersion = 2;

struct ServerStatsReply {
  uint32_t stats_version = 0;
  uint64_t widgets = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<ServerStatsReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] +=
      "ServerStatsReply 1 stats_version\n"
      "ServerStatsReply 2 stats_version widgets\n";
  files["PROTOCOL.md"] += doc_extra;
  return files;
}

TEST(AudlintTest, DocumentedStatsFieldsPass) {
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a `widgets` counter.\n");
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, UndocumentedStatsFieldFlagged) {
  FileMap files =
      TreeWithStatsReply("\nThe stats reply carries `stats_version`.\n");
  EXPECT_TRUE(HasProblem(
      LintTree(files), "ServerStatsReply v2 field widgets is not documented"));
}

TEST(AudlintTest, SubstringDoesNotCountAsStatsDocumentation) {
  // "widgetsphere" contains "widgets" but is a different identifier; the
  // check requires a whole-word mention.
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a widgetsphere.\n");
  EXPECT_TRUE(HasProblem(
      LintTree(files), "ServerStatsReply v2 field widgets is not documented"));
}

TEST(AudlintTest, OnlyNewestStatsVersionNeedsDocs) {
  // Only the newest locked version's field list is enforced, regardless of
  // the order the lock lines appear in.
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a `widgets` counter.\n");
  std::string lock = files["schema.lock"];
  // Move the v2 line above the v1 line.
  files["schema.lock"] =
      "PingReply 1 value\n"
      "ServerStatsReply 2 stats_version widgets\n"
      "ServerStatsReply 1 stats_version\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

// Extends the clean tree with a second locked reply struct so the tests can
// show doc coverage applies to EVERY locked struct, not just ServerStatsReply.
FileMap TreeWithToneReply() {
  FileMap files = CleanTree();
  files["messages.h"] += R"(
inline constexpr uint32_t kToneVersion = 1;

struct ToneReply {
  uint32_t pitch = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<ToneReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] += "ToneReply 1 pitch\n";
  return files;
}

TEST(AudlintTest, EveryLockedStructNeedsDocCoverage) {
  // Doc coverage is not special-cased to the stats reply: any locked struct
  // with an undocumented field is flagged.
  FileMap files = TreeWithToneReply();
  EXPECT_TRUE(
      HasProblem(LintTree(files), "ToneReply v1 field pitch is not documented"));
}

TEST(AudlintTest, DocumentedNonStatsLockedStructPasses) {
  FileMap files = TreeWithToneReply();
  files["PROTOCOL.md"] += "\nToneReply carries the generator `pitch` in Hz.\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

// --- v2: lock-rank drift (CheckLockRanks) ---------------------------------

TEST(AudlintTest, ParseValuedEnumReadsNamesAndValues) {
  std::vector<std::string> problems;
  std::vector<EnumEntry> entries =
      ParseValuedEnum(CleanTree()["lock_rank.h"], "LockRank", &problems);
  EXPECT_TRUE(NoProblems(problems));
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "Unranked");
  EXPECT_EQ(entries[0].value, -1);
  EXPECT_EQ(entries[2].name, "EgressQueue");
  EXPECT_EQ(entries[2].value, 2);
}

TEST(AudlintTest, LockRankMissingDocRowFlagged) {
  FileMap files = CleanTree();
  // A new ranked lock lands in code but the DESIGN.md table is not updated.
  files["lock_rank.h"] = R"(
enum class LockRank : int {
  kUnranked = -1,
  kServerState = 0,
  kEgressQueue = 2,
  kDecodedCache = 2,
  kLogging = 7,
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "lock table has no row for kDecodedCache (rank 2)"));
}

TEST(AudlintTest, LockRankValueMismatchFlagged) {
  FileMap files = CleanTree();
  files["DESIGN.md"] = R"(
   | Lock | Guards | LockRank | Rank |
   |---|---|---|---|
   | `AudioServer::mu_` | everything | `kServerState` | 0 |
   | `EgressQueue::mu_` | outbound frames | `kEgressQueue` | 3 |
   | `g_log_mu` | stderr | `kLogging` | 7 |
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "lock table says kEgressQueue = 3, lock_rank.h says 2"));
}

TEST(AudlintTest, LockRankUnknownDocRowFlagged) {
  FileMap files = CleanTree();
  files["DESIGN.md"] = R"(
   | Lock | Guards | LockRank | Rank |
   |---|---|---|---|
   | `AudioServer::mu_` | everything | `kServerState` | 0 |
   | `EgressQueue::mu_` | outbound frames | `kEgressQueue` | 2 |
   | `Ghost::mu_` | nothing | `kGhost` | 4 |
   | `g_log_mu` | stderr | `kLogging` | 7 |
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "lock table lists unknown rank kGhost = 4"));
}

TEST(AudlintTest, LockRankTableMissingEntirelyFlagged) {
  FileMap files = CleanTree();
  files["DESIGN.md"] = "No table here at all.\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "lock table"));
}

TEST(AudlintTest, UnrankedNeedsNoDocRow) {
  // kUnranked is the opt-out sentinel, not a lock; the clean-tree table has
  // no row for it and that must not be a problem.
  EXPECT_TRUE(NoProblems(LintTree(CleanTree())));
}

// --- v2: error-code drift (CheckErrorCodes) -------------------------------

TEST(AudlintTest, ErrorCodeMissingNameCaseFlagged) {
  FileMap files = CleanTree();
  files["status.h"] = R"(
enum class ErrorCode : uint8_t {
  kOk = 0,
  kBadResource = 1,
  kTimeout = 2,
  kBadValue = 3,
};
)";
  std::vector<std::string> problems = LintTree(files);
  EXPECT_TRUE(HasProblem(problems, "ErrorCodeName has no case for kBadValue"));
  // The new code is also undocumented — both layers complain.
  EXPECT_TRUE(HasProblem(problems, "error code BadValue(3) is not documented"));
}

TEST(AudlintTest, ErrorCodeNameTextMismatchFlagged) {
  FileMap files = CleanTree();
  files["status.cc"] = R"(
std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kBadResource:
      return "ResourceBad";
    case ErrorCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "ErrorCodeName maps kBadResource to \"ResourceBad\""));
}

TEST(AudlintTest, ErrorCodeStaleNameCaseFlagged) {
  FileMap files = CleanTree();
  // Enum entry removed; its switch case lingers. (In the real tree
  // -Werror=switch would also catch this; audlint catches it without a
  // compiler.)
  files["status.h"] = R"(
enum class ErrorCode : uint8_t {
  kOk = 0,
  kBadResource = 1,
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "ErrorCodeName has a case for unknown code kTimeout"));
}

TEST(AudlintTest, ErrorCodeDocValueMismatchFlagged) {
  FileMap files = CleanTree();
  size_t pos = files["PROTOCOL.md"].find("`Timeout(2)`");
  ASSERT_NE(pos, std::string::npos);
  files["PROTOCOL.md"].replace(pos, 12, "`Timeout(9)`");
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "error codes say Timeout = 9, status.h says 2"));
}

TEST(AudlintTest, ErrorCodeUnknownDocCodeFlagged) {
  FileMap files = CleanTree();
  size_t pos = files["PROTOCOL.md"].find("`Timeout(2)`");
  ASSERT_NE(pos, std::string::npos);
  files["PROTOCOL.md"].insert(pos, "`Ghost(9)`, ");
  EXPECT_TRUE(
      HasProblem(LintTree(files), "error codes list unknown code Ghost(9)"));
}

TEST(AudlintTest, OpcodeNotationOutsideErrorParagraphIgnored) {
  // `CreateLoud(1)` opcode notation elsewhere in the doc must not be read
  // as an error code.
  FileMap files = CleanTree();
  files["PROTOCOL.md"] += "\nSee also the `NoOp(0)` opcode notation.\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

// --- v2: metrics coverage (CheckMetricsCoverage) --------------------------

TEST(AudlintTest, WriteOnlyMetricFlagged) {
  FileMap files = CleanTree();
  files["metrics.h"] = R"(
struct ServerMetrics {
  static constexpr size_t kOpcodes = 4;
  obs::Counter requests[kOpcodes];
  obs::Counter requests_total;
  obs::Counter ghost_counter;
  obs::LatencyHistogram dispatch_us;
  uint64_t uptime_ms() const { return 0; }
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "ServerMetrics.ghost_counter is never rendered"));
}

TEST(AudlintTest, ArrayMetricFieldRequiresRenderingToo) {
  FileMap files = CleanTree();
  // Drop the per-opcode rendering: the array field must be flagged even
  // though the field declaration carries an array extent.
  files["server_state.cc"] = "reply.requests_total = metrics_.requests_total.value();\n";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "ServerMetrics.requests is never rendered"));
}

TEST(AudlintTest, MetricRenderedByFlightRecorderCounts) {
  FileMap files = CleanTree();
  files["metrics.h"] = R"(
struct ServerMetrics {
  static constexpr size_t kOpcodes = 4;
  obs::Counter requests[kOpcodes];
  obs::Counter requests_total;
  obs::Counter recorded_only;
  obs::LatencyHistogram dispatch_us;
};
)";
  files["flight_recorder.cc"] = "frame.recorded_only = metrics.recorded_only.value();\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

// --- v2: CLI flag documentation (CheckCliDocCoverage) ---------------------

TEST(AudlintTest, UndocumentedCliFlagFlagged) {
  FileMap files = CleanTree();
  files["audiond.cc"] += "\n    if (arg == \"--ghost-mode\") { ghost = true; }\n";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "audiond flag --ghost-mode is undocumented"));
}

TEST(AudlintTest, FlagPrefixOfLongerFlagDoesNotCount) {
  FileMap files = CleanTree();
  // README documents only --json-out; the audioctl flag --json must still
  // be flagged (prefix matches don't count).
  files["README.md"] = R"(
Run `audiond --port 7800 --verbose`. Benchmarks accept `--json-out=PATH`.
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "audioctl flag --json is undocumented"));
}

TEST(AudlintTest, BareDashDashSeparatorIgnored) {
  FileMap files = CleanTree();
  files["audioctl.cc"] += "\n    if (arg == \"--\") { rest_are_positional = true; }\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

}  // namespace
}  // namespace audlint
}  // namespace aud
