// Unit tests for the audlint protocol drift checker (tools/audlint_core.cc).
//
// Each test builds a small in-memory fixture tree — a fake protocol with two
// opcodes wired end to end — and then mutates one layer to prove the linter
// catches exactly that class of drift. The real tree is linted by the
// `audlint` ctest (tools/audlint.cc); these tests prove the checker would
// actually fail if someone added opcode 44 without its counterparts.

#include "tools/audlint_core.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace aud {
namespace audlint {
namespace {

using FileMap = std::map<std::string, std::string>;

// gmock is not available in every build environment, so these stand in for
// Contains(HasSubstr(...)) / IsEmpty() with messages that dump the list.
testing::AssertionResult HasProblem(const std::vector<std::string>& problems,
                                    const std::string& needle) {
  for (const std::string& p : problems) {
    if (p.find(needle) != std::string::npos) {
      return testing::AssertionSuccess();
    }
  }
  auto result = testing::AssertionFailure()
                << "no problem contains \"" << needle << "\"; got "
                << problems.size() << " problem(s):";
  for (const std::string& p : problems) {
    result << "\n  " << p;
  }
  return result;
}

testing::AssertionResult NoProblems(const std::vector<std::string>& problems) {
  if (problems.empty()) {
    return testing::AssertionSuccess();
  }
  auto result = testing::AssertionFailure()
                << "expected a clean tree; got " << problems.size()
                << " problem(s):";
  for (const std::string& p : problems) {
    result << "\n  " << p;
  }
  return result;
}

// A minimal consistent tree: two opcodes (NoOp, Ping), one versioned reply.
FileMap CleanTree() {
  FileMap files;
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kOpcodeCount = 2,
};
)";
  files["protocol.cc"] = R"(
constexpr std::string_view kOpcodeNames[] = {
    "NoOp",  // 0
    "Ping",  // 1
};
)";
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["messages.cc"] = "";
  files["alib.h"] = R"(
void NoOp();
uint32_t Ping();
)";
  files["alib.cc"] = "";
  files["requests.cc"] = R"(
void AudioConnection::NoOp() { SendRequest(Opcode::kNoOp, {}); }
uint32_t AudioConnection::Ping() { return SendRequest(Opcode::kPing, {}); }
)";
  files["dispatcher.cc"] = R"(
switch (static_cast<Opcode>(message.header.code)) {
  case Opcode::kNoOp:
    break;
  case Opcode::kPing:
    break;
  case Opcode::kOpcodeCount:
    break;
}
)";
  files["PROTOCOL.md"] = R"(
### Opcode index

| opcode | name | reply |
| ------ | ---- | ----- |
| 0      | NoOp | none  |
| 1      | Ping | PingReply |

PingReply carries a single `value` counter.
)";
  files["schema.lock"] = "PingReply 1 value\n";
  return files;
}

TEST(AudlintTest, CleanTreePasses) {
  EXPECT_TRUE(NoProblems(LintTree(CleanTree())));
}

TEST(AudlintTest, MissingInputFileReported) {
  FileMap files = CleanTree();
  files.erase("dispatcher.cc");
  EXPECT_TRUE(HasProblem(LintTree(files), "missing input file: dispatcher.cc"));
}

TEST(AudlintTest, ParseOpcodeEnumReadsNamesAndCount) {
  std::vector<std::string> problems;
  OpcodeEnum parsed = ParseOpcodeEnum(CleanTree()["protocol.h"], &problems);
  EXPECT_TRUE(NoProblems(problems));
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].name, "NoOp");
  EXPECT_EQ(parsed.entries[1].name, "Ping");
  EXPECT_EQ(parsed.entries[1].value, 1);
  EXPECT_EQ(parsed.count, 2);
}

TEST(AudlintTest, NonDenseOpcodeValuesFlagged) {
  FileMap files = CleanTree();
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 5,
  kOpcodeCount = 2,
};
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "kPing has value 5, expected dense value 1"));
}

TEST(AudlintTest, StaleOpcodeCountFlagged) {
  FileMap files = CleanTree();
  // Opcode added but kOpcodeCount not bumped.
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kShout = 2,
  kOpcodeCount = 2,
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "kOpcodeCount is 2 but the enum lists 3 opcodes"));
}

// The headline scenario: a new opcode lands in the enum but nowhere else.
// Every unwired layer must produce its own complaint.
TEST(AudlintTest, NewOpcodeWithoutCounterpartsFailsEveryLayer) {
  FileMap files = CleanTree();
  files["protocol.h"] = R"(
enum class Opcode : uint16_t {
  kNoOp = 0,
  kPing = 1,
  kShout = 2,
  kOpcodeCount = 3,
};
)";
  std::vector<std::string> problems = LintTree(files);
  EXPECT_TRUE(HasProblem(problems, "kOpcodeNames has 2 entries"));
  EXPECT_TRUE(HasProblem(problems, "no `case Opcode::kShout` handler"));
  EXPECT_TRUE(HasProblem(problems, "no wrapper references Opcode::kShout"));
  EXPECT_TRUE(HasProblem(problems, "opcode index has no row for Shout"));
}

TEST(AudlintTest, NameTableOrderMismatchFlagged) {
  FileMap files = CleanTree();
  files["protocol.cc"] = R"(
constexpr std::string_view kOpcodeNames[] = {
    "Ping",
    "NoOp",
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "kOpcodeNames[0] is \"Ping\", enum says \"NoOp\""));
}

TEST(AudlintTest, SubstringOpcodeReferenceDoesNotCount) {
  FileMap files = CleanTree();
  // `Opcode::kPingExtended` must not satisfy the kPing wiring check.
  files["dispatcher.cc"] = R"(
case Opcode::kNoOp: break;
case Opcode::kPingExtended: break;
case Opcode::kOpcodeCount: break;
)";
  EXPECT_TRUE(HasProblem(LintTree(files), "no `case Opcode::kPing` handler"));
}

TEST(AudlintTest, EncodeWithoutDecodeFlagged) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
};
)";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "struct PingReply has Encode but no Decode"));
}

TEST(AudlintTest, DocOpcodeNumberMismatchFlagged) {
  FileMap files = CleanTree();
  files["PROTOCOL.md"] = R"(
### Opcode index

| opcode | name | reply |
| ------ | ---- | ----- |
| 0      | NoOp | none  |
| 2      | Ping | PingReply |
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "opcode index says Ping = 2, protocol.h says 1"));
}

TEST(AudlintTest, DocUnknownOpcodeFlagged) {
  FileMap files = CleanTree();
  files["PROTOCOL.md"] += "| 7 | Whisper | none |\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "lists unknown opcode Whisper = 7"));
}

TEST(AudlintTest, NumericTablesOutsideOpcodeIndexIgnored) {
  FileMap files = CleanTree();
  // Event-code style tables in later sections are not opcode rows.
  files["PROTOCOL.md"] += R"(
### Event codes

| code | event |
| ---- | ----- |
| 11   | TelephoneRing |
)";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, ParseStructFieldsSkipsMethodsAndStatics) {
  std::string header = R"(
struct PingReply {
  static constexpr int kMagic = 7;
  uint32_t value = 0;
  std::string label;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_EQ(ParseStructFields(header, "PingReply"),
            (std::vector<std::string>{"value", "label"}));
}

TEST(AudlintTest, SchemaDriftWithoutLockUpdateFlagged) {
  FileMap files = CleanTree();
  // A field appended to the struct without a new lock line.
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 1;

struct PingReply {
  uint32_t value = 0;
  uint32_t extra = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "PingReply v1 field list does not match messages.h"));
}

TEST(AudlintTest, ProperAppendOnlyEvolutionPasses) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t value = 0;
  uint32_t extra = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] = "PingReply 1 value\nPingReply 2 value extra\n";
  files["PROTOCOL.md"] += "\nVersion 2 appends an `extra` counter.\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, ReorderedFieldsBreakOldVersionPrefix) {
  FileMap files = CleanTree();
  // Fields reordered: v2 matches, but v1 is no longer a prefix.
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t extra = 0;
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] = "PingReply 1 value\nPingReply 2 extra value\n";
  EXPECT_TRUE(HasProblem(LintTree(files),
                         "v1 is not a strict prefix of the current fields"));
}

TEST(AudlintTest, VersionConstantDisagreementFlagged) {
  FileMap files = CleanTree();
  files["messages.h"] = R"(
inline constexpr uint32_t kPingVersion = 2;

struct PingReply {
  uint32_t value = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<PingReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  EXPECT_TRUE(HasProblem(
      LintTree(files),
      "locked at version 1 but messages.h declares kPingVersion = 2"));
}

TEST(AudlintTest, LockedStructMissingFromHeaderFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] += "GhostReply 1 spooky\n";
  EXPECT_TRUE(
      HasProblem(LintTree(files), "struct GhostReply not found in messages.h"));
}

TEST(AudlintTest, EmptySchemaLockFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] = "# nothing locked yet\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "no schemas locked"));
}

TEST(AudlintTest, MalformedLockLineFlagged) {
  FileMap files = CleanTree();
  files["schema.lock"] = "PingReply 1 value\nPingReply\n";
  EXPECT_TRUE(HasProblem(LintTree(files), "malformed line: PingReply"));
}

// Extends the clean tree with a locked ServerStatsReply (v1 -> v2) so the
// stats doc-coverage check (check 8) has something to examine. doc_extra is
// appended to PROTOCOL.md.
FileMap TreeWithStatsReply(const std::string& doc_extra) {
  FileMap files = CleanTree();
  files["messages.h"] += R"(
inline constexpr uint32_t kServerStatsVersion = 2;

struct ServerStatsReply {
  uint32_t stats_version = 0;
  uint64_t widgets = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<ServerStatsReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] +=
      "ServerStatsReply 1 stats_version\n"
      "ServerStatsReply 2 stats_version widgets\n";
  files["PROTOCOL.md"] += doc_extra;
  return files;
}

TEST(AudlintTest, DocumentedStatsFieldsPass) {
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a `widgets` counter.\n");
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

TEST(AudlintTest, UndocumentedStatsFieldFlagged) {
  FileMap files =
      TreeWithStatsReply("\nThe stats reply carries `stats_version`.\n");
  EXPECT_TRUE(HasProblem(
      LintTree(files), "ServerStatsReply v2 field widgets is not documented"));
}

TEST(AudlintTest, SubstringDoesNotCountAsStatsDocumentation) {
  // "widgetsphere" contains "widgets" but is a different identifier; the
  // check requires a whole-word mention.
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a widgetsphere.\n");
  EXPECT_TRUE(HasProblem(
      LintTree(files), "ServerStatsReply v2 field widgets is not documented"));
}

TEST(AudlintTest, OnlyNewestStatsVersionNeedsDocs) {
  // Only the newest locked version's field list is enforced, regardless of
  // the order the lock lines appear in.
  FileMap files = TreeWithStatsReply(
      "\nThe stats reply carries `stats_version` and a `widgets` counter.\n");
  std::string lock = files["schema.lock"];
  // Move the v2 line above the v1 line.
  files["schema.lock"] =
      "PingReply 1 value\n"
      "ServerStatsReply 2 stats_version widgets\n"
      "ServerStatsReply 1 stats_version\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

// Extends the clean tree with a second locked reply struct so the tests can
// show doc coverage applies to EVERY locked struct, not just ServerStatsReply.
FileMap TreeWithToneReply() {
  FileMap files = CleanTree();
  files["messages.h"] += R"(
inline constexpr uint32_t kToneVersion = 1;

struct ToneReply {
  uint32_t pitch = 0;
  std::vector<uint8_t> Encode() const;
  static StatusOr<ToneReply> Decode(const std::vector<uint8_t>& payload);
};
)";
  files["schema.lock"] += "ToneReply 1 pitch\n";
  return files;
}

TEST(AudlintTest, EveryLockedStructNeedsDocCoverage) {
  // Doc coverage is not special-cased to the stats reply: any locked struct
  // with an undocumented field is flagged.
  FileMap files = TreeWithToneReply();
  EXPECT_TRUE(
      HasProblem(LintTree(files), "ToneReply v1 field pitch is not documented"));
}

TEST(AudlintTest, DocumentedNonStatsLockedStructPasses) {
  FileMap files = TreeWithToneReply();
  files["PROTOCOL.md"] += "\nToneReply carries the generator `pitch` in Hz.\n";
  EXPECT_TRUE(NoProblems(LintTree(files)));
}

}  // namespace
}  // namespace audlint
}  // namespace aud
