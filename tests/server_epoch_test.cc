// Epoch-snapshot engine tick + sharded dispatch (DESIGN.md decision 12).
//
// The contract under test (see server_state.h and server.h):
//   * Each tick is an epoch: the island partition is captured under the
//     state lock (EpochOpen), the fan-out runs with NO state lock (only
//     per-root engine locks), and results are published atomically at the
//     epoch boundary (EpochCommit). epoch_commits therefore always equals
//     ticks_run — a torn or aborted epoch would break the equality.
//   * Structural mutations (create/destroy/rewire/map) drain the in-flight
//     epoch via WaitEngineIdle before touching the graph; engine-plane
//     requests (queue control, properties) take only the target root's
//     shard lock. Neither may deadlock, tear an epoch, or race the fan-out
//     (this suite runs under TSan in CI with --gtest_repeat=3).
//   * Dispatch latency stays bounded while a 4-thread tick storm runs —
//     the big lock is no longer held across the fan-out.
//   * Output stays bit-identical across engine_threads = 1, 2, 4.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {
namespace {

// In-process server + client + toolkit with explicit ServerOptions (the
// shared ServerFixture pins the defaults, so it cannot build the
// engine_threads > 1 twin).
class World {
 public:
  World(const BoardConfig& config, const ServerOptions& options)
      : board_(config), server_(&board_, options) {
    auto [client_end, server_end] = CreatePipePair();
    server_.AddConnection(std::move(server_end));
    client_ = AudioConnection::Open(std::move(client_end), "epoch-test");
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    toolkit_->set_time_pump([this] { server_.StepFrames(160); });
  }
  ~World() { server_.Shutdown(); }

  Board& board() { return board_; }
  AudioServer& server() { return server_; }
  AudioConnection& client() { return *client_; }
  AudioToolkit& toolkit() { return *toolkit_; }

 private:
  Board board_;
  AudioServer server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
};

std::vector<Sample> Tone(int i, size_t samples) {
  std::vector<Sample> pcm(samples);
  for (size_t j = 0; j < samples; ++j) {
    pcm[j] = static_cast<Sample>(
        ((i * 37 + static_cast<int>(j) * 11) % 2001) - 1000);
  }
  return pcm;
}

// `n` independent playing chains, each looping a 1 s chain-specific tone
// `plays_each` times, so a multi-threaded tick has real fan-out work.
void BuildChains(World& world, int n, int plays_each) {
  AudioToolkit& toolkit = world.toolkit();
  AudioConnection& client = world.client();
  for (int i = 0; i < n; ++i) {
    ResourceId sound = toolkit.UploadSound(Tone(i, 8000), {Encoding::kPcm16, 8000});
    auto chain = toolkit.BuildPlaybackChain();
    std::vector<CommandSpec> program;
    for (int p = 0; p < plays_each; ++p) {
      program.push_back(PlayCommand(chain.player, sound, 1));
    }
    client.Enqueue(chain.loud, program);
    client.StartQueue(chain.loud);
  }
  ASSERT_TRUE(client.Sync().ok());
}

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p / 100.0 * static_cast<double>(values.size()));
  return values[std::min(rank, values.size() - 1)];
}

// -- Epoch accounting --------------------------------------------------------

// Every tick is exactly one committed epoch: a torn, aborted, or
// double-published epoch breaks the equality.
TEST(EpochAccountingTest, CommitsMatchTicksRun) {
  ServerOptions options;
  options.engine_threads = 4;
  World world(BoardConfig{}, options);
  BuildChains(world, 4, 1);

  auto before = world.client().GetServerStats(false);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().epoch_commits, before.value().ticks_run);

  for (int t = 0; t < 25; ++t) {
    world.server().StepFrames(160);
  }

  auto after = world.client().GetServerStats(false);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().epoch_commits, after.value().ticks_run);
  EXPECT_EQ(after.value().ticks_run - before.value().ticks_run, 25u);
  // The commit critical section is instrumented (one sample per epoch).
  EXPECT_GE(after.value().epoch_commit_us.count, after.value().epoch_commits);
}

// -- Dispatch during a tick storm --------------------------------------------

// Engine-plane requests against an idle root keep completing, promptly,
// while a 4-thread tick storm runs back-to-back epochs. The latency bound
// is deliberately loose (shared CI runners); the committed bench baseline
// (bench/baselines/BENCH_engine_scaling.json) carries the tight 1.25x
// storm-vs-control acceptance. The probe root is unmapped, so its shard
// lock is never taken by the fan-out.
TEST(DispatchStormTest, RequestsStayResponsiveDuringTickStorm) {
  ServerOptions options;
  options.engine_threads = 4;
  World world(BoardConfig{}, options);
  BuildChains(world, 8, 5);  // 5 x 1 s per chain: outlives the storm

  AudioConnection& client = world.client();
  ResourceId probe = client.CreateLoud(kNoResource, {});
  ASSERT_TRUE(client.Sync().ok());

  auto before = client.GetServerStats(false);
  ASSERT_TRUE(before.ok());

  std::atomic<bool> stop{false};
  std::thread pump([&world, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      world.server().StepFrames(160);
    }
  });

  std::vector<double> latencies;
  for (int i = 0; i < 400; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto reply = client.QueryQueue(probe);
    auto t1 = std::chrono::steady_clock::now();
    ASSERT_TRUE(reply.ok()) << "request " << i << " failed mid-storm";
    latencies.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  stop.store(true);
  pump.join();

  auto after = client.GetServerStats(false);
  ASSERT_TRUE(after.ok());
  // The storm really ran epochs underneath the requests.
  EXPECT_GT(after.value().epoch_commits, before.value().epoch_commits);
  EXPECT_EQ(after.value().epoch_commits, after.value().ticks_run);
  // Loose, sanitizer-proof bound: pre-epoch, a request could queue behind
  // an unbounded run of whole-tick lock holds.
  EXPECT_LT(PercentileOf(latencies, 99), 100000.0) << "p99 above 100 ms";
}

// -- Structural mutations racing the storm -----------------------------------

// create/destroy/rewire/map while a 4-thread storm ticks: every mutation
// drains the in-flight epoch first, so nothing tears. TSan (CI repeats
// this suite 3x under it) checks the no-data-race half of the contract;
// the stats equality checks the no-torn-epoch half.
TEST(EpochRaceTest, CreateDestroyRewireDuringStorm) {
  ServerOptions options;
  options.engine_threads = 4;
  World world(BoardConfig{}, options);
  BuildChains(world, 4, 5);

  AudioConnection& client = world.client();
  // Uploaded ahead of the storm: the mutation loop below avoids the
  // toolkit, whose event waits would pump ticks from this thread too.
  ResourceId sound =
      world.toolkit().UploadSound(Tone(99, 8000), {Encoding::kPcm16, 8000});
  ASSERT_TRUE(client.Sync().ok());

  std::atomic<bool> stop{false};
  std::thread pump([&world, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      world.server().StepFrames(160);
    }
  });

  for (int i = 0; i < 40; ++i) {
    ResourceId root = client.CreateLoud(kNoResource, {});
    ResourceId player = client.CreateDevice(root, DeviceClass::kPlayer, {});
    ResourceId output = client.CreateDevice(root, DeviceClass::kOutput, {});
    ResourceId wire = client.CreateWire(player, 0, output, 0);
    client.MapLoud(root);
    client.Enqueue(root, {PlayCommand(player, sound, 1)});
    client.StartQueue(root);
    const std::vector<uint8_t> prop_value = {'m', 'i', 'd'};
    client.ChangeProperty(root, "epoch-test", "string", prop_value);
    if (i % 2 == 0) {
      // Rewire live: tear the wire out from under the playing graph.
      client.DestroyWire(wire);
      client.CreateWire(player, 0, output, 0);
    }
    client.StopQueue(root);
    client.DestroyLoud(root);  // takes the whole subtree with it
    ASSERT_TRUE(client.Sync().ok()) << "iteration " << i;
  }

  stop.store(true);
  pump.join();

  auto stats = client.GetServerStats(false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().epoch_commits, stats.value().ticks_run);
}

// -- Mutation visibility at the epoch boundary -------------------------------

// A fixed number of epochs runs on one thread while this thread mutates
// the graph: every epoch still commits exactly once (mutations wait for
// the boundary; they never abort or split a tick), and the mutations are
// fully visible afterwards.
TEST(EpochVisibilityTest, MutationsLandAtEpochBoundaries) {
  ServerOptions options;
  options.engine_threads = 4;
  World world(BoardConfig{}, options);
  BuildChains(world, 4, 5);

  AudioConnection& client = world.client();
  ResourceId sound =
      world.toolkit().UploadSound(Tone(7, 8000), {Encoding::kPcm16, 8000});
  ASSERT_TRUE(client.Sync().ok());

  auto before = client.GetServerStats(false);
  ASSERT_TRUE(before.ok());

  constexpr int kEpochs = 200;
  std::thread pump([&world] {
    for (int t = 0; t < kEpochs; ++t) {
      world.server().StepFrames(160);
    }
  });

  // Rack up mutations while the epochs run.
  ResourceId kept = kNoResource;
  ResourceId kept_player = kNoResource;
  for (int i = 0; i < 20; ++i) {
    ResourceId root = client.CreateLoud(kNoResource, {});
    ResourceId player = client.CreateDevice(root, DeviceClass::kPlayer, {});
    ResourceId output = client.CreateDevice(root, DeviceClass::kOutput, {});
    client.CreateWire(player, 0, output, 0);
    client.MapLoud(root);
    if (i + 1 < 20) {
      client.DestroyLoud(root);
    } else {
      kept = root;  // the last one survives the storm
      kept_player = player;
    }
  }
  ASSERT_TRUE(client.Sync().ok());
  pump.join();

  auto after = client.GetServerStats(false);
  ASSERT_TRUE(after.ok());
  // Exactly kEpochs epochs committed — none torn, none double-counted,
  // despite 20 drain-class mutation bursts racing them.
  EXPECT_EQ(after.value().ticks_run - before.value().ticks_run,
            static_cast<uint64_t>(kEpochs));
  EXPECT_EQ(after.value().epoch_commits, after.value().ticks_run);

  // The surviving mutation is fully live: it can play through the engine.
  client.Enqueue(kept, {PlayCommand(kept_player, sound, 1)});
  client.StartQueue(kept);
  ASSERT_TRUE(client.Sync().ok());
  auto queue = client.QueryQueue(kept);
  ASSERT_TRUE(queue.ok());
  world.server().StepFrames(160);
  ASSERT_TRUE(client.Sync().ok());
}

// -- Bit-identity across worker counts ---------------------------------------

// The epoch fan-out must not change audible output: engine_threads 1, 2
// and 4 produce bit-identical speaker streams for a workload that mixes
// independent chains with a shared-mixer island. (server_parallel_test
// covers the wider workload; this pins the tentpole's 1/2/4 matrix.)
TEST(EpochDeterminismTest, BitIdenticalAcrossEngineThreads124) {
  BoardConfig config;
  config.speakers = 2;
  std::vector<std::vector<Sample>> captures[2];

  for (int threads : {1, 2, 4}) {
    ServerOptions options;
    options.engine_threads = threads;
    World world(config, options);
    for (SpeakerUnit* speaker : world.board().speakers()) {
      speaker->set_capture_output(true);
    }
    AudioConnection& client = world.client();
    AudioToolkit& toolkit = world.toolkit();
    const char* positions[2] = {"left", "right"};

    for (int i = 0; i < 8; ++i) {
      ResourceId sound =
          toolkit.UploadSound(Tone(i, 4000), {Encoding::kPcm16, 8000});
      AttrList attrs;
      attrs.SetString(AttrTag::kPosition, positions[i % 2]);
      auto chain = toolkit.BuildPlaybackChain(attrs);
      client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
      client.StartQueue(chain.loud);
    }
    // One shared-mixer island on top of the independent chains.
    ResourceId root = client.CreateLoud(kNoResource, {});
    ResourceId child_a = client.CreateLoud(root, {});
    ResourceId child_b = client.CreateLoud(root, {});
    ResourceId player_a = client.CreateDevice(child_a, DeviceClass::kPlayer, {});
    ResourceId player_b = client.CreateDevice(child_b, DeviceClass::kPlayer, {});
    ResourceId mixer = client.CreateDevice(root, DeviceClass::kMixer, {});
    ResourceId output = client.CreateDevice(root, DeviceClass::kOutput, {});
    client.CreateWire(player_a, 0, mixer, 0);
    client.CreateWire(player_b, 0, mixer, 1);
    client.CreateWire(mixer, 0, output, 0);
    client.MapLoud(root);
    ResourceId sa = toolkit.UploadSound(Tone(50, 4000), {Encoding::kPcm16, 8000});
    ResourceId sb = toolkit.UploadSound(Tone(51, 4000), {Encoding::kPcm16, 8000});
    client.Enqueue(root, {PlayCommand(player_a, sa, 1), PlayCommand(player_b, sb, 2)});
    client.StartQueue(root);
    ASSERT_TRUE(client.Sync().ok());

    world.server().StepFrames(160 * 20);
    for (int s = 0; s < 2; ++s) {
      captures[s].push_back(
          world.board().speakers()[static_cast<size_t>(s)]->played());
    }
  }

  for (int s = 0; s < 2; ++s) {
    ASSERT_EQ(captures[s].size(), 3u);
    EXPECT_TRUE(captures[s][0] == captures[s][1])
        << "threads=2 diverged from serial, speaker " << s;
    EXPECT_TRUE(captures[s][0] == captures[s][2])
        << "threads=4 diverged from serial, speaker " << s;
  }
}

}  // namespace
}  // namespace aud
