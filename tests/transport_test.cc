// Transport tests: pipe streams, TCP sockets, framing.

#include <gtest/gtest.h>

#include <thread>

#include "src/transport/framer.h"
#include "src/transport/pipe_stream.h"
#include "src/transport/socket_stream.h"

namespace aud {
namespace {

TEST(PipeStreamTest, BytesFlowBothWays) {
  auto [a, b] = CreatePipePair();
  std::vector<uint8_t> ping = {1, 2, 3};
  ASSERT_TRUE(a->Write(ping));
  std::vector<uint8_t> buf(3);
  ASSERT_TRUE(ReadFully(b.get(), buf));
  EXPECT_EQ(buf, ping);

  std::vector<uint8_t> pong = {9, 8};
  ASSERT_TRUE(b->Write(pong));
  buf.resize(2);
  ASSERT_TRUE(ReadFully(a.get(), buf));
  EXPECT_EQ(buf, pong);
}

TEST(PipeStreamTest, CloseUnblocksReader) {
  auto [a, b] = CreatePipePair();
  std::thread reader([&] {
    std::vector<uint8_t> buf(10);
    EXPECT_EQ(b->Read(buf), 0u);  // EOF
  });
  a->Close();
  reader.join();
}

TEST(PipeStreamTest, DrainsBufferedDataAfterClose) {
  auto [a, b] = CreatePipePair();
  std::vector<uint8_t> data = {5, 6, 7};
  a->Write(data);
  a->Close();
  std::vector<uint8_t> buf(3);
  EXPECT_TRUE(ReadFully(b.get(), buf));
  EXPECT_EQ(buf, data);
  EXPECT_EQ(b->Read(buf), 0u);
}

TEST(PipeStreamTest, WriteAfterCloseFails) {
  auto [a, b] = CreatePipePair();
  b->Close();
  std::vector<uint8_t> data = {1};
  EXPECT_FALSE(a->Write(data));
}

TEST(PipeStreamTest, LargeTransferSurvivesChunking) {
  auto [a, b] = CreatePipePair();
  std::vector<uint8_t> big(100000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 7);
  }
  std::thread writer([&] { a->Write(big); });
  std::vector<uint8_t> got(big.size());
  ASSERT_TRUE(ReadFully(b.get(), got));
  writer.join();
  EXPECT_EQ(got, big);
}

TEST(SocketStreamTest, LoopbackRoundTrip) {
  SocketListener listener;
  ASSERT_TRUE(listener.Listen(0));
  ASSERT_NE(listener.port(), 0);

  std::unique_ptr<ByteStream> server_side;
  std::thread acceptor([&] { server_side = listener.Accept(); });
  auto client_side = ConnectTcp("127.0.0.1", listener.port());
  acceptor.join();
  ASSERT_NE(client_side, nullptr);
  ASSERT_NE(server_side, nullptr);

  std::vector<uint8_t> msg = {42, 43, 44};
  ASSERT_TRUE(client_side->Write(msg));
  std::vector<uint8_t> buf(3);
  ASSERT_TRUE(ReadFully(server_side.get(), buf));
  EXPECT_EQ(buf, msg);

  ASSERT_TRUE(server_side->Write(msg));
  ASSERT_TRUE(ReadFully(client_side.get(), buf));
  EXPECT_EQ(buf, msg);
}

TEST(SocketStreamTest, ConnectToClosedPortFails) {
  SocketListener listener;
  ASSERT_TRUE(listener.Listen(0));
  uint16_t port = listener.port();
  listener.Close();
  EXPECT_EQ(ConnectTcp("127.0.0.1", port), nullptr);
}

TEST(FramerTest, MessageRoundTrip) {
  auto [a, b] = CreatePipePair();
  std::vector<uint8_t> payload = {10, 20, 30, 40};
  ASSERT_TRUE(WriteMessage(a.get(), MessageType::kEvent, 5, 99, payload));
  auto msg = ReadMessage(b.get());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.type, MessageType::kEvent);
  EXPECT_EQ(msg->header.code, 5);
  EXPECT_EQ(msg->header.sequence, 99u);
  EXPECT_EQ(msg->payload, payload);
}

TEST(FramerTest, EmptyPayloadOk) {
  auto [a, b] = CreatePipePair();
  ASSERT_TRUE(WriteMessage(a.get(), MessageType::kRequest, 0, 1, {}));
  auto msg = ReadMessage(b.get());
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->payload.empty());
}

TEST(FramerTest, SequentialMessagesStayFramed) {
  auto [a, b] = CreatePipePair();
  for (uint32_t i = 0; i < 50; ++i) {
    std::vector<uint8_t> payload(i, static_cast<uint8_t>(i));
    ASSERT_TRUE(WriteMessage(a.get(), MessageType::kRequest, static_cast<uint16_t>(i), i,
                             payload));
  }
  for (uint32_t i = 0; i < 50; ++i) {
    auto msg = ReadMessage(b.get());
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->header.code, i);
    EXPECT_EQ(msg->payload.size(), i);
  }
}

TEST(FramerTest, OversizedLengthRejected) {
  auto [a, b] = CreatePipePair();
  MessageHeader h;
  h.type = MessageType::kRequest;
  h.length = kMaxPayload + 1;
  ByteWriter w;
  h.Encode(&w);
  a->Write(w.bytes());
  EXPECT_FALSE(ReadMessage(b.get()).has_value());
}

TEST(FramerTest, NonZeroReservedByteRejected) {
  auto [a, b] = CreatePipePair();
  ByteWriter w;
  MessageHeader{}.Encode(&w);
  std::vector<uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  bytes[1] = 0x5A;
  a->Write(bytes);
  a->Close();
  EXPECT_FALSE(ReadMessage(b.get()).has_value());
}

TEST(FramerTest, UnknownMessageTypeRejected) {
  auto [a, b] = CreatePipePair();
  ByteWriter w;
  MessageHeader{}.Encode(&w);
  std::vector<uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  bytes[0] = 0x7F;
  a->Write(bytes);
  a->Close();
  EXPECT_FALSE(ReadMessage(b.get()).has_value());
}

TEST(FramerTest, EofMidMessageReturnsNothing) {
  auto [a, b] = CreatePipePair();
  MessageHeader h;
  h.type = MessageType::kRequest;
  h.length = 100;  // promised but never delivered
  ByteWriter w;
  h.Encode(&w);
  a->Write(w.bytes());
  a->Close();
  EXPECT_FALSE(ReadMessage(b.get()).has_value());
}

}  // namespace
}  // namespace aud
