// aud::obs core: counters, gauges, log-scale histograms and trace rings
// (ISSUE: observability layer). Covers the bucket-boundary contract
// (bucket b >= 1 holds [2^(b-1), 2^b - 1]), snapshot consistency under
// concurrent increments, and trace-ring wraparound.

#include "src/common/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace aud {
namespace obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, AddSubSet) {
  Gauge g;
  g.Add(3);
  g.Sub(1);
  EXPECT_EQ(g.value(), 2);
  g.Sub(5);
  EXPECT_EQ(g.value(), -3);  // signed: transient imbalance cannot wrap
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST(LatencyHistogram, BucketBoundaries) {
  // bucket 0 = {0}, 1 = {1}, 2 = {2,3}, 3 = {4..7}, 4 = {8..15}, ...
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketFor(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketFor(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketFor(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1024), 11u);
  // Values beyond the last bucket clamp into it instead of indexing out.
  EXPECT_EQ(LatencyHistogram::BucketFor(UINT64_MAX), LatencyHistogram::kBuckets - 1);

  for (size_t b = 1; b < 12; ++b) {
    EXPECT_EQ(LatencyHistogram::BucketFor(LatencyHistogram::BucketLow(b)), b);
    EXPECT_EQ(LatencyHistogram::BucketFor(LatencyHistogram::BucketHigh(b)), b);
  }
}

TEST(LatencyHistogram, SnapshotStatistics) {
  LatencyHistogram h;
  EXPECT_TRUE(h.Snapshot().empty());
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(100);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.Mean(), 26.5);
  EXPECT_EQ(s.buckets[1], 1u);  // {1}
  EXPECT_EQ(s.buckets[2], 2u);  // {2,3}
  EXPECT_EQ(s.buckets[7], 1u);  // {64..127}
}

TEST(LatencyHistogram, PercentilesOrderedAndClamped) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  HistogramSnapshot s = h.Snapshot();
  double p50 = s.Percentile(50);
  double p95 = s.Percentile(95);
  double p99 = s.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log buckets are coarse, but the medians of a uniform ramp must land in
  // the right region and inside the observed range.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);

  LatencyHistogram one;
  one.Record(42);
  HistogramSnapshot s1 = one.Snapshot();
  // Interpolation clamps to [min, max]: a single sample reports itself.
  EXPECT_DOUBLE_EQ(s1.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s1.Percentile(99), 42.0);
}

TEST(LatencyHistogram, SnapshotUnderConcurrentRecording) {
  LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop, t] {
      uint64_t v = static_cast<uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v % 1000 + 1;
      }
    });
  }
  // Snapshots taken mid-stream must always be internally consistent: the
  // bucket total can only trail count (each Record bumps count first... or
  // buckets first; either way the difference is bounded by in-flight
  // recorders, and min/max bracket every value ever recorded).
  for (int i = 0; i < 1000; ++i) {
    HistogramSnapshot s = h.Snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t b : s.buckets) {
      bucket_total += b;
    }
    if (s.count > 0) {
      EXPECT_GE(s.min, 1u);
      EXPECT_LE(s.min, s.max);
      EXPECT_LE(s.max, 1000u);
    }
    // count and bucket_total race only by the Records in flight while the
    // snapshot reads its 40 buckets — a small bound, never a torn word.
    uint64_t diff = bucket_total > s.count ? bucket_total - s.count : s.count - bucket_total;
    EXPECT_LE(diff, 100u);
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
  HistogramSnapshot final = h.Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t b : final.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, final.count);
}

TEST(TraceRing, RecordAndCollect) {
  TraceRing ring(7);
  ring.Record(TraceReason::kTickStart, 160, 0, 100, 1);
  ring.Record(TraceReason::kTickEnd, 55, 2, 200, 2);
  std::vector<TraceEvent> events;
  ring.Collect(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].reason, TraceReason::kTickStart);
  EXPECT_EQ(events[0].arg0, 160u);
  EXPECT_EQ(events[0].tid, 7u);
  EXPECT_EQ(events[1].reason, TraceReason::kTickEnd);
  EXPECT_EQ(events[1].seq, 2u);
}

TEST(TraceRing, WrapKeepsNewestInOrder) {
  TraceRing ring(0);
  constexpr uint64_t kTotal = TraceRing::kCapacity + 50;
  for (uint64_t i = 0; i < kTotal; ++i) {
    ring.Record(TraceReason::kDispatch, static_cast<uint32_t>(i), 0,
                static_cast<int64_t>(i), i);
  }
  std::vector<TraceEvent> events;
  ring.Collect(&events);
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // Oldest retained is kTotal - kCapacity; order is oldest-first.
  EXPECT_EQ(events.front().seq, kTotal - TraceRing::kCapacity);
  EXPECT_EQ(events.back().seq, kTotal - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(TraceRegistry, MergesThreadsAndTruncates) {
  TraceRegistry& reg = TraceRegistry::Instance();
  size_t before = reg.Snapshot(0).size();
  Trace(TraceReason::kConnectionOpen, 1);
  std::thread other([] { Trace(TraceReason::kConnectionClose, 2); });
  other.join();
  std::vector<TraceEvent> all = reg.Snapshot(0);
  EXPECT_GE(all.size(), before + 2);
  // seq-ordered merge.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].seq, all[i].seq);
  }
  // Truncation keeps the newest events.
  std::vector<TraceEvent> one = reg.Snapshot(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].seq, all.back().seq);
  EXPECT_NE(TraceReasonName(one[0].reason), "?");
}

TEST(TraceReasonNames, AllNamed) {
  for (uint16_t r = 0; r < static_cast<uint16_t>(TraceReason::kTraceReasonCount); ++r) {
    EXPECT_NE(TraceReasonName(static_cast<TraceReason>(r)), "?") << "reason " << r;
  }
}

}  // namespace
}  // namespace obs
}  // namespace aud
