// Playback-path tests: sounds through players to speakers, transparent
// mixing of multiple clients, gapless back-to-back plays (the paper's
// "without a single dropped or inserted sample"), and sync marks.

#include <gtest/gtest.h>

#include "src/dsp/encoding.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class PlaybackTest : public ServerFixture {};

TEST_F(PlaybackTest, PlaySoundReachesSpeaker) {
  board_->speakers()[0]->set_capture_output(true);

  auto tone = TestTone(200);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  ExpectNoErrors();

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  StepMs(100);  // drain the codec ring

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  ASSERT_GT(played.size(), tone.size() / 2);
  // The tone (not silence) must have reached the speaker: count audible
  // samples rather than RMS, since virtual time may run past the sound.
  size_t audible = 0;
  for (Sample s : played) {
    if (std::abs(s) > 1000) {
      ++audible;
    }
  }
  EXPECT_GT(audible, tone.size() / 2);
  ExpectNoErrors();
}

TEST_F(PlaybackTest, PlaybackIsMulawRoundTripOfOriginal) {
  board_->speakers()[0]->set_capture_output(true);

  auto tone = TestTone(100);
  tone[0] = 12000;  // distinctive alignment marker
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  StepMs(100);

  // Compare against the mu-law round trip of the original.
  StreamEncoder enc(Encoding::kMulaw8);
  std::vector<uint8_t> bytes;
  enc.Encode(tone, &bytes);
  StreamDecoder dec(Encoding::kMulaw8);
  std::vector<Sample> expected;
  dec.Decode(bytes, &expected);

  // Find the marker in the speaker output (skipping codec priming silence).
  const std::vector<Sample>& played = board_->speakers()[0]->played();
  size_t start = 0;
  while (start < played.size() && played[start] != expected[0]) {
    ++start;
  }
  ASSERT_LT(start, played.size()) << "marker sample never played";
  size_t n = std::min<size_t>(1000, expected.size());
  ASSERT_LE(start + n, played.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(played[start + i], expected[i]) << "at sample " << i;
  }
}

TEST_F(PlaybackTest, BackToBackPlaysAreGapless) {
  board_->speakers()[0]->set_capture_output(true);

  // Two sounds whose sizes are NOT period-aligned, so the transition falls
  // mid-tick; a DC marker value makes gap samples (zeros) detectable.
  std::vector<Sample> a(1234, 1000);
  std::vector<Sample> b(2345, -2000);
  ResourceId sa = toolkit_->UploadSound(a, {Encoding::kPcm16, 8000});
  ResourceId sb = toolkit_->UploadSound(b, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();
  ExpectNoErrors();

  uint32_t tag = 77;
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sa, 1),
                                PlayCommand(chain.player, sb, tag)});
  client_->StartQueue(chain.loud);
  ASSERT_TRUE(toolkit_->WaitCommandDone(tag));
  StepMs(1200);

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  // Locate the start of sound A.
  size_t start = 0;
  while (start < played.size() && played[start] != 1000) {
    ++start;
  }
  ASSERT_LT(start + a.size() + b.size(), played.size() + 1);
  // Every sample of A then immediately every sample of B: zero gap.
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(played[start + i], 1000) << "dropped/inserted sample inside A at " << i;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(played[start + a.size() + i], -2000)
        << "gap between A and B at offset " << i;
  }
}

TEST_F(PlaybackTest, TwoClientsMixOnOneSpeaker) {
  board_->speakers()[0]->set_capture_output(true);

  // Client 1 plays a constant +1000; client 2 plays a constant +500. The
  // speaker should carry +1500 where they overlap (transparent mixing,
  // section 6.1).
  auto client2 = Connect("client2");
  ASSERT_NE(client2, nullptr);
  AudioToolkit toolkit2(client2.get());
  toolkit2.set_time_pump([this] { server_->StepFrames(160); });

  std::vector<Sample> dc1(8000, 1000);
  std::vector<Sample> dc2(8000, 500);
  ResourceId s1 = toolkit_->UploadSound(dc1, {Encoding::kPcm16, 8000});
  ResourceId s2 = toolkit2.UploadSound(dc2, {Encoding::kPcm16, 8000});

  auto chain1 = toolkit_->BuildPlaybackChain();
  auto chain2 = toolkit2.BuildPlaybackChain();
  ExpectNoErrors();

  client_->Enqueue(chain1.loud, {PlayCommand(chain1.player, s1, 11)});
  client2->Enqueue(chain2.loud, {PlayCommand(chain2.player, s2, 22)});
  client_->StartQueue(chain1.loud);
  client2->StartQueue(chain2.loud);
  client_->Sync().ok();
  client2->Sync().ok();

  ASSERT_TRUE(toolkit_->WaitCommandDone(11, 20000));
  StepMs(200);

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  int mixed = 0;
  for (Sample s : played) {
    if (s == 1500) {
      ++mixed;
    }
  }
  // Both streams start within a tick or two of each other; the overlap
  // must dominate.
  EXPECT_GT(mixed, 6000) << "streams were not mixed sample-wise";
}

TEST_F(PlaybackTest, SyncMarksTrackPlaybackPosition) {
  auto tone = TestTone(1000);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->SetSyncMarks(chain.loud, 125);
  ExpectNoErrors();

  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 9)});
  client_->StartQueue(chain.loud);

  std::vector<SyncMarkArgs> marks;
  bool done = toolkit_
                  ->WaitFor(
                      [&](const EventMessage& event) {
                        if (event.type == EventType::kSyncMark) {
                          marks.push_back(SyncMarkArgs::Decode(event.args));
                          return false;
                        }
                        return event.type == EventType::kCommandDone;
                      },
                      20000)
                  .has_value();
  ASSERT_TRUE(done);
  // 1 s of audio with 125 ms marks: expect around 8 marks.
  EXPECT_GE(marks.size(), 6u);
  EXPECT_LE(marks.size(), 10u);
  // Positions are monotonically increasing and end near the total.
  for (size_t i = 1; i < marks.size(); ++i) {
    EXPECT_GT(marks[i].position_samples, marks[i - 1].position_samples);
    EXPECT_EQ(marks[i].total_samples, tone.size());
  }
}

TEST_F(PlaybackTest, ImmediateStopAbortsPlayback) {
  auto tone = TestTone(2000);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 5)});
  client_->StartQueue(chain.loud);
  Flush();        // requests processed...
  StepMs(100);    // ...and the Play is actually running.

  client_->Immediate(chain.loud, StopCommand(chain.player));
  Flush();
  auto event = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kCommandDone; }, 5000);
  ASSERT_TRUE(event.has_value());
  CommandDoneArgs args = CommandDoneArgs::Decode(event->args);
  EXPECT_EQ(args.tag, 5u);
  EXPECT_EQ(args.aborted, 1u);
}

TEST_F(PlaybackTest, PlaybackAtDifferentSoundRateIsResampled) {
  board_->speakers()[0]->set_capture_output(true);
  // A 16 kHz sound on an 8 kHz board: plays at half the sample count.
  std::vector<Sample> tone;
  SineOscillator osc(440.0, 16000, 0.5);
  osc.Generate(16000, &tone);  // 1 s at 16 kHz
  ResourceId sound = toolkit_->UploadSound(tone, {Encoding::kPcm16, 16000});
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  StepMs(200);

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  size_t loud_samples = 0;
  for (Sample s : played) {
    if (std::abs(s) > 1000) {
      ++loud_samples;
    }
  }
  // ~1 s of audible audio at 8 kHz (sine spends most time above 1000 of
  // 16384 amplitude).
  EXPECT_GT(loud_samples, 5000u);
  EXPECT_LT(loud_samples, 9000u);
}

TEST_F(PlaybackTest, RealTimeDataSupplyKeepsPlaybackGoing) {
  board_->speakers()[0]->set_capture_output(true);
  // Client streams data into the sound while it plays (section 5.6's
  // real-time supply): write 100 ms, start playing, keep appending.
  ResourceId sound = client_->CreateSound({Encoding::kPcm16, 8000});
  std::vector<Sample> block(800, 3000);  // 100 ms
  StreamEncoder enc(Encoding::kPcm16);
  std::vector<uint8_t> bytes;
  enc.Encode(block, &bytes);

  client_->WriteSound(sound, 0, bytes);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 3)});
  client_->StartQueue(chain.loud);
  Flush();

  uint64_t offset = bytes.size();
  for (int i = 0; i < 5; ++i) {
    // Stay ahead of the player: append (and flush) the next block before
    // advancing time past the current one.
    client_->WriteSound(sound, offset, bytes);
    Flush();
    offset += bytes.size();
    StepMs(60);
  }
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 20000));
  StepMs(200);

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  size_t supplied = 0;
  for (Sample s : played) {
    if (s == 3000) {
      ++supplied;
    }
  }
  // All six blocks (4800 samples) should have played.
  EXPECT_EQ(supplied, 4800u);
}

}  // namespace
}  // namespace aud
