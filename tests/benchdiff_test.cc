// Unit tests for the perf-regression comparator (tools/benchdiff_core.h):
// parsing the bench JSON shape, threshold semantics in both metric
// directions, and the missing/new benchmark notes.

#include <gtest/gtest.h>

#include <string>

#include "tools/benchdiff_core.h"

namespace aud {
namespace benchdiff {
namespace {

std::string BenchFile(const std::string& entries) {
  return "{\n  \"context\": {\"executable\": \"bench_x\", \"host_name\": \"h\","
         " \"nested\": {\"deep\": [1, 2, {\"a\": true}]}},\n"
         "  \"benchmarks\": [\n" + entries + "\n  ]\n}\n";
}

TEST(BenchdiffParse, ReadsNamesAndNumericFields) {
  std::string error;
  auto entries = ParseBenchJson(
      BenchFile(R"(    {"name": "mix/8", "run_type": "iteration", "iterations": 100,
                       "real_time": 2900.5, "cpu_time": 2900.5, "time_unit": "ns",
                       "tick_p99_us": 12.25},
                     {"name": "cache_on", "real_time": 1.5e3, "speedup_vs_cache_off": 2.03})"),
      &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "mix/8");
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("real_time"), 2900.5);
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("tick_p99_us"), 12.25);
  EXPECT_DOUBLE_EQ(entries[0].metrics.at("iterations"), 100);
  EXPECT_EQ(entries[0].metrics.count("time_unit"), 0u);  // strings skipped
  EXPECT_DOUBLE_EQ(entries[1].metrics.at("real_time"), 1500.0);
  EXPECT_DOUBLE_EQ(entries[1].metrics.at("speedup_vs_cache_off"), 2.03);
}

TEST(BenchdiffParse, EmptyBenchmarksArrayIsValid) {
  std::string error;
  auto entries = ParseBenchJson("{\"benchmarks\": []}", &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(entries.empty());
}

TEST(BenchdiffParse, MalformedInputSetsError) {
  std::string error;
  auto entries = ParseBenchJson("{\"benchmarks\": [{\"name\": }", &error);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(error.empty());

  entries = ParseBenchJson("not json at all", &error);
  EXPECT_TRUE(entries.empty());
  EXPECT_FALSE(error.empty());
}

TEST(BenchdiffCompare, FlagsTimeGrowthPastThreshold) {
  std::string error;
  auto base = ParseBenchJson(
      BenchFile(R"({"name": "a", "real_time": 1000.0},
                   {"name": "b", "real_time": 1000.0})"), &error);
  auto cur = ParseBenchJson(
      BenchFile(R"({"name": "a", "real_time": 1090.0},
                   {"name": "b", "real_time": 1111.0})"), &error);
  DiffResult result = Compare(base, cur, 0.10);
  ASSERT_EQ(result.deltas.size(), 2u);
  EXPECT_FALSE(result.deltas[0].regression);  // +9.0% stays under threshold
  EXPECT_TRUE(result.deltas[1].regression);   // +11.1% crosses it
  EXPECT_TRUE(result.has_regression);
}

TEST(BenchdiffCompare, TimeImprovementIsNotARegression) {
  std::string error;
  auto base = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 1000.0})"), &error);
  auto cur = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 400.0})"), &error);
  DiffResult result = Compare(base, cur, 0.10);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_FALSE(result.has_regression);
}

TEST(BenchdiffCompare, SpeedupMetricsRegressDownward) {
  std::string error;
  auto base = ParseBenchJson(
      BenchFile(R"({"name": "cache_on", "real_time": 1000.0, "speedup_vs_cache_off": 2.0})"),
      &error);
  auto shrunk = ParseBenchJson(
      BenchFile(R"({"name": "cache_on", "real_time": 1000.0, "speedup_vs_cache_off": 1.6})"),
      &error);
  auto grown = ParseBenchJson(
      BenchFile(R"({"name": "cache_on", "real_time": 1000.0, "speedup_vs_cache_off": 3.0})"),
      &error);
  EXPECT_TRUE(Compare(base, shrunk, 0.10).has_regression);  // 2.0 -> 1.6 = -20%
  EXPECT_FALSE(Compare(base, grown, 0.10).has_regression);  // bigger is better
}

TEST(BenchdiffCompare, BookkeepingFieldsAreIgnored) {
  std::string error;
  auto base = ParseBenchJson(
      BenchFile(R"({"name": "a", "iterations": 100, "cpu_time": 50.0, "real_time": 50.0})"),
      &error);
  auto cur = ParseBenchJson(
      BenchFile(R"({"name": "a", "iterations": 900, "cpu_time": 500.0, "real_time": 50.0})"),
      &error);
  DiffResult result = Compare(base, cur, 0.10);
  ASSERT_EQ(result.deltas.size(), 1u);  // only real_time compared
  EXPECT_EQ(result.deltas[0].metric, "real_time");
  EXPECT_FALSE(result.has_regression);
}

TEST(BenchdiffCompare, MissingAndNewBenchmarksBecomeNotes) {
  std::string error;
  auto base = ParseBenchJson(
      BenchFile(R"({"name": "gone", "real_time": 10.0},
                   {"name": "kept", "real_time": 10.0})"), &error);
  auto cur = ParseBenchJson(
      BenchFile(R"({"name": "kept", "real_time": 10.0},
                   {"name": "fresh", "real_time": 10.0})"), &error);
  DiffResult result = Compare(base, cur, 0.10);
  EXPECT_FALSE(result.has_regression);
  ASSERT_EQ(result.notes.size(), 2u);
  EXPECT_NE(result.notes[0].find("gone"), std::string::npos);
  EXPECT_NE(result.notes[1].find("fresh"), std::string::npos);
}

TEST(BenchdiffCompare, ThresholdIsConfigurable) {
  std::string error;
  auto base = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 100.0})"), &error);
  auto cur = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 104.0})"), &error);
  EXPECT_FALSE(Compare(base, cur, 0.10).has_regression);
  EXPECT_TRUE(Compare(base, cur, 0.02).has_regression);
}

TEST(BenchdiffReport, MarksRegressedLines) {
  std::string error;
  auto base = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 100.0})"), &error);
  auto cur = ParseBenchJson(BenchFile(R"({"name": "a", "real_time": 200.0})"), &error);
  std::string report = FormatReport(Compare(base, cur, 0.10));
  EXPECT_NE(report.find("REGRESSED"), std::string::npos);
  EXPECT_NE(report.find("+100.0%"), std::string::npos);
}

}  // namespace
}  // namespace benchdiff
}  // namespace aud
