// Tests for the extension features: WAV I/O, speaker-phone hard-wiring
// rules (section 5.2), recorder pause compression (section 5.1), partial
// plays (start/end samples), and exclusive-use error reporting.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/wav.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

TEST(WavTest, WriteReadRoundTrip) {
  std::vector<Sample> pcm;
  SineOscillator osc(440.0, 8000, 0.5);
  osc.Generate(800, &pcm);
  std::string path = ::testing::TempDir() + "/roundtrip.wav";
  ASSERT_TRUE(WriteWavFile(path, pcm, 8000));

  auto wav = ReadWavFile(path);
  ASSERT_TRUE(wav.ok()) << wav.status().ToString();
  EXPECT_EQ(wav.value().sample_rate_hz, 8000u);
  EXPECT_EQ(wav.value().samples, pcm);
  std::remove(path.c_str());
}

TEST(WavTest, MissingFileReportsError) {
  auto wav = ReadWavFile("/no/such/file.wav");
  EXPECT_FALSE(wav.ok());
}

TEST(WavTest, GarbageFileRejected) {
  std::string path = ::testing::TempDir() + "/garbage.wav";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 100; ++i) {
    std::fputc(i * 37, f);
  }
  std::fclose(f);
  EXPECT_FALSE(ReadWavFile(path).ok());
  std::remove(path.c_str());
}

class SpeakerphoneTest : public ServerFixture {
 protected:
  void SetUp() override { Init(BoardConfig{.speakerphone = true}); }

  ResourceId DeviceIdByName(const std::string& name) {
    auto reply = client_->QueryDeviceLoud();
    if (!reply.ok()) {
      return kNoResource;
    }
    for (const auto& dev : reply.value().devices) {
      if (dev.attrs.GetString(AttrTag::kName) == name) {
        return dev.id;
      }
    }
    return kNoResource;
  }
};

TEST_F(SpeakerphoneTest, DeviceLoudExposesHardWires) {
  auto reply = client_->QueryDeviceLoud();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().devices.size(), 6u);
  ASSERT_EQ(reply.value().hard_wires.size(), 2u);
  ResourceId sp_line = DeviceIdByName("speakerphone-line");
  ResourceId sp_speaker = DeviceIdByName("speakerphone-speaker");
  EXPECT_EQ(reply.value().hard_wires[0].src_device, sp_line);
  EXPECT_EQ(reply.value().hard_wires[0].dst_device, sp_speaker);
}

TEST_F(SpeakerphoneTest, WiringAcrossHardWireBoundaryRejected) {
  // A telephone pinned to the speaker-phone line may not be wired to an
  // output pinned to the *desktop* speaker (section 5.2's example).
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList phone_attrs;
  phone_attrs.SetU32(AttrTag::kDeviceId, DeviceIdByName("speakerphone-line"));
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, phone_attrs);
  AttrList out_attrs;
  out_attrs.SetU32(AttrTag::kDeviceId, DeviceIdByName("speaker0"));
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, out_attrs);

  client_->CreateWire(telephone, 0, output, 0);
  ExpectError(ErrorCode::kBadWiring);
}

TEST_F(SpeakerphoneTest, WiringWithinHardWireGroupAllowed) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList phone_attrs;
  phone_attrs.SetU32(AttrTag::kDeviceId, DeviceIdByName("speakerphone-line"));
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, phone_attrs);
  AttrList out_attrs;
  out_attrs.SetU32(AttrTag::kDeviceId, DeviceIdByName("speakerphone-speaker"));
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, out_attrs);

  client_->CreateWire(telephone, 0, output, 0);
  ExpectNoErrors();
}

TEST_F(SpeakerphoneTest, UnpinnedDevicesWireFreely) {
  // Devices without kDeviceId constraints are matched at activation, not
  // wiring, so no hard-wire error applies.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(telephone, 0, output, 0);
  ExpectNoErrors();
}

class ExtensionsTest : public ServerFixture {};

TEST_F(ExtensionsTest, PauseCompressionShrinksRecording) {
  // Two recorders, one with pause compression, both fed the same audio
  // (speech, long pause, speech).
  auto record_with = [&](bool compress) -> uint64_t {
    ResourceId loud = client_->CreateLoud(kNoResource, {});
    ResourceId input = client_->CreateDevice(loud, DeviceClass::kInput, {});
    AttrList attrs;
    attrs.SetBool(AttrTag::kPauseCompression, compress);
    ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, attrs);
    client_->CreateWire(input, 0, recorder, 0);
    client_->SelectEvents(loud, kQueueEvents | kRecorderEvents);
    client_->MapLoud(loud);

    auto speech = TestTone(400, 300.0);
    std::vector<Sample> feed = speech;
    feed.insert(feed.end(), 16000, 0);  // 2 s pause
    feed.insert(feed.end(), speech.begin(), speech.end());
    board_->microphones()[0]->AddPendingAudio(feed);

    ResourceId sound = client_->CreateSound({Encoding::kPcm16, 8000});
    client_->Enqueue(loud, {RecordCommand(recorder, sound, kTerminateOnStop, 2800, 1)});
    client_->StartQueue(loud);
    Flush();
    EXPECT_TRUE(toolkit_->WaitCommandDone(1));
    auto info = client_->QuerySound(sound);
    EXPECT_TRUE(info.ok());
    uint64_t samples = info.ok() ? info.value().samples : 0;
    client_->DestroyLoud(loud);
    return samples;
  };

  uint64_t plain = record_with(false);
  uint64_t compressed = record_with(true);
  EXPECT_GT(plain, 20000u);  // full 2.8 s
  EXPECT_LT(compressed, plain - 10000)
      << "pause compression should remove most of the 2 s silence";
}

TEST_F(ExtensionsTest, PartialPlayHonorsStartAndEnd) {
  board_->speakers()[0]->set_capture_output(true);
  // A staircase sound: 4 segments of 1000 samples with values 1..4.
  std::vector<Sample> pcm;
  for (Sample v = 1; v <= 4; ++v) {
    pcm.insert(pcm.end(), 1000, static_cast<Sample>(v * 1000));
  }
  ResourceId sound = toolkit_->UploadSound(pcm, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();

  // Play only samples [1000, 3000): segments 2 and 3.
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1, 1000, 3000)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));
  StepMs(600);

  int counts[5] = {0, 0, 0, 0, 0};
  for (Sample s : board_->speakers()[0]->played()) {
    if (s % 1000 == 0 && s >= 1000 && s <= 4000) {
      ++counts[s / 1000];
    }
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1000);
  EXPECT_EQ(counts[3], 1000);
  EXPECT_EQ(counts[4], 0);
}

TEST_F(ExtensionsTest, PartialPlayOfMulawUsesStatefulSkip) {
  // ADPCM-style stateful skip path: start offset on a mu-law sound decodes
  // from the beginning and discards exactly the right number of samples.
  board_->speakers()[0]->set_capture_output(true);
  std::vector<Sample> pcm(2000, 0);
  for (size_t i = 0; i < pcm.size(); ++i) {
    pcm[i] = static_cast<Sample>(i < 1000 ? 0 : 8000);
  }
  ResourceId sound = toolkit_->UploadSound(pcm, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1, 1000, -1)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));
  StepMs(400);

  size_t loud_count = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (std::abs(s) > 4000) {
      ++loud_count;
    }
  }
  EXPECT_NEAR(static_cast<double>(loud_count), 1000.0, 8.0);
}

TEST_F(ExtensionsTest, CatalogueSoundSurvivesSourceDestruction) {
  ResourceId original = client_->CreateSound(kTelephoneFormat);
  std::vector<uint8_t> data(64, 7);
  client_->WriteSound(original, 0, data);
  client_->SaveCatalogueSound(original, "keeper");
  client_->DestroySound(original);
  Flush();
  ResourceId restored = client_->LoadCatalogueSound("keeper");
  Flush();
  auto read = client_->ReadSound(restored, 0, 64);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data);
}


class DuplexTest : public ServerFixture {};

TEST_F(DuplexTest, FullDuplexCallAudio) {
  // Play to the far end while recording it, simultaneously (CoBegin): a
  // real conversation path, both directions verified sample-wise.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, {});
  client_->CreateWire(player, 0, telephone, 0);
  client_->CreateWire(telephone, 0, recorder, 0);
  client_->SelectEvents(loud, kAllEvents);
  client_->MapLoud(loud);

  // Far end: answers, then speaks a constant while recording what it hears.
  FarEndParty* peer = board_->AddFarEnd("555-4444");
  std::vector<Sample> peer_voice(8000, 1111);  // 1 s of +1111
  peer->AnswerAfterRings(1).Speak(peer_voice).WaitMs(60000);

  std::vector<Sample> our_voice(8000, 2222);
  ResourceId our_sound = toolkit_->UploadSound(our_voice, {Encoding::kPcm16, 8000});
  ResourceId recording = client_->CreateSound({Encoding::kPcm16, 8000});

  client_->Enqueue(loud,
                   {DialCommand(telephone, "555-4444", 1), CoBeginCommand(),
                    PlayCommand(player, our_sound, 2),
                    RecordCommand(recorder, recording, kTerminateOnStop, 1500, 3),
                    CoEndCommand()});
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 30000));
  StepMs(2500);

  // We heard the peer...
  auto recorded = toolkit_->DownloadSound(recording);
  ASSERT_TRUE(recorded.ok());
  int heard_peer = 0;
  for (Sample s : recorded.value()) {
    if (s == 1111) {
      ++heard_peer;
    }
  }
  EXPECT_GT(heard_peer, 4000) << "far-end speech missing from our recording";

  // ...and the peer heard us at the same time (heard() logs all rx audio,
  // including what arrived while its script was still speaking).
  int peer_heard_us = 0;
  for (Sample s : peer->heard()) {
    if (s == 2222) {
      ++peer_heard_us;
    }
  }
  EXPECT_GT(peer_heard_us, 4000) << "our speech missing at the far end";
}

TEST_F(DuplexTest, OddEngineStepSizesStayExact) {
  // Driving the engine with non-period step sizes (StepFrames runs a
  // trailing partial tick) must not break sample exactness.
  board_->speakers()[0]->set_capture_output(true);
  std::vector<Sample> a(777, 1000);
  std::vector<Sample> b(333, 2000);
  ResourceId sa = toolkit_->UploadSound(a, {Encoding::kPcm16, 8000});
  ResourceId sb = toolkit_->UploadSound(b, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sa, 1),
                                PlayCommand(chain.player, sb, 2)});
  client_->StartQueue(chain.loud);
  Flush();
  // Advance in awkward chunks: 1, 7, 33, 100, 159, 161 frames...
  const int64_t kSteps[] = {1, 7, 33, 100, 159, 161, 500, 123, 997};
  for (int round = 0; round < 5; ++round) {
    for (int64_t step : kSteps) {
      server_->StepFrames(step);
    }
  }
  server_->StepFrames(8000);

  const auto& played = board_->speakers()[0]->played();
  size_t start = 0;
  while (start < played.size() && played[start] != 1000) {
    ++start;
  }
  ASSERT_LE(start + a.size() + b.size(), played.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(played[start + i], 1000) << "A broken at " << i;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(played[start + a.size() + i], 2000) << "gap at " << i;
  }
}

}  // namespace
}  // namespace aud
