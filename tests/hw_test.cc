// Hardware-simulation tests: codec underrun/overrun accounting, the phone
// exchange call FSM, DTMF transport, far-end scripting and the board pump.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/dtmf.h"
#include "src/dsp/goertzel.h"
#include "src/dsp/tone.h"
#include "src/hw/board.h"

namespace aud {
namespace {

double Rms(std::span<const Sample> s) {
  if (s.empty()) {
    return 0;
  }
  double acc = 0;
  for (Sample v : s) {
    acc += (v / 32768.0) * (v / 32768.0);
  }
  return std::sqrt(acc / s.size());
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(CodecTest, PlaybackFlowsThrough) {
  Codec codec(8000, 1024);
  std::vector<Sample> in = {1, 2, 3, 4};
  EXPECT_EQ(codec.WritePlayback(in), 4u);
  EXPECT_EQ(codec.PlaybackQueued(), 4u);
  std::vector<Sample> played;
  codec.PumpPlayback(4, &played);
  EXPECT_EQ(played, in);
  EXPECT_EQ(codec.underrun_frames(), 0);
  EXPECT_EQ(codec.device_frames(), 4);
}

TEST(CodecTest, IdleCodecDoesNotCountUnderruns) {
  Codec codec(8000, 1024);
  codec.PumpPlayback(160, nullptr);
  EXPECT_EQ(codec.underrun_frames(), 0);
  EXPECT_FALSE(codec.playback_started());
}

TEST(CodecTest, StarvedCodecCountsUnderruns) {
  Codec codec(8000, 1024);
  std::vector<Sample> in(100, 5);
  codec.WritePlayback(in);
  std::vector<Sample> played;
  codec.PumpPlayback(160, &played);  // only 100 available
  EXPECT_EQ(codec.underrun_frames(), 60);
  EXPECT_EQ(codec.underrun_events(), 1);
  // Starved region renders silence.
  EXPECT_EQ(played[120], 0);
}

TEST(CodecTest, UnderrunEventsCountEpisodesNotFrames) {
  Codec codec(8000, 1024);
  std::vector<Sample> block(160, 7);
  codec.WritePlayback(block);
  codec.PumpPlayback(160, nullptr);  // fed
  codec.PumpPlayback(160, nullptr);  // starved (episode 1)
  codec.PumpPlayback(160, nullptr);  // still starved (same episode)
  codec.WritePlayback(block);
  codec.PumpPlayback(160, nullptr);  // fed again
  codec.PumpPlayback(160, nullptr);  // starved (episode 2)
  EXPECT_EQ(codec.underrun_events(), 2);
}

TEST(CodecTest, CaptureOverflowCounted) {
  Codec codec(8000, 64);
  std::vector<Sample> in(100, 3);
  codec.PumpCapture(in);
  EXPECT_GT(codec.overrun_frames(), 0);
  EXPECT_EQ(codec.CaptureAvailable(), 64u);
}

TEST(CodecTest, PlaybackEndFramePredictsCompletion) {
  Codec codec(8000, 1024);
  std::vector<Sample> in(500, 1);
  codec.WritePlayback(in);
  EXPECT_EQ(codec.PlaybackEndFrame(), 500);
  codec.PumpPlayback(200, nullptr);
  EXPECT_EQ(codec.PlaybackEndFrame(), 500);  // 200 played + 300 queued
}

TEST(CodecTest, DeviceTimeTracksFrames) {
  Codec codec(8000, 1024);
  codec.PumpPlayback(8000, nullptr);
  EXPECT_EQ(codec.DeviceTime(), kTicksPerSecond);
}

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

class ExchangeTest : public ::testing::Test {
 protected:
  Exchange exchange_{8000};

  void Advance(int ms) {
    size_t frames = static_cast<size_t>(8000) * ms / 1000;
    while (frames > 0) {
      size_t step = std::min<size_t>(frames, 160);
      exchange_.Advance(step);
      frames -= step;
    }
  }
};

TEST_F(ExchangeTest, BasicCallSetupAndAudio) {
  ExchangeLine* a = exchange_.AddLine("100", "Alice");
  ExchangeLine* b = exchange_.AddLine("200", "Bob");

  int b_rings = 0;
  std::string caller_seen;
  b->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kRing) {
      ++b_rings;
      caller_seen = e.caller_id;
    }
  });

  ASSERT_TRUE(a->Dial("200").ok());
  EXPECT_EQ(a->state(), LineState::kRingingOut);
  EXPECT_EQ(b->state(), LineState::kRingingIn);
  EXPECT_EQ(b_rings, 1);
  EXPECT_EQ(caller_seen, "Alice");

  // Caller hears ringback while waiting.
  Advance(500);
  std::vector<Sample> heard(4000);
  a->ReadRx(heard);
  EXPECT_GT(GoertzelPower(heard, 440, 8000), 0.01);

  ASSERT_TRUE(b->Answer().ok());
  EXPECT_EQ(a->state(), LineState::kConnected);
  EXPECT_EQ(b->state(), LineState::kConnected);

  // Voice path: A speaks, B hears.
  std::vector<Sample> voice(800, 1234);
  a->WriteTx(voice);
  Advance(100);
  std::vector<Sample> rx(800);
  b->ReadRx(rx);
  int matching = 0;
  for (Sample s : rx) {
    if (s == 1234) {
      ++matching;
    }
  }
  EXPECT_EQ(matching, 800);
}

TEST_F(ExchangeTest, DialUnknownNumberGetsReorder) {
  ExchangeLine* a = exchange_.AddLine("100");
  CallState state = CallState::kIdle;
  a->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kProgress) {
      state = e.state;
    }
  });
  ASSERT_TRUE(a->Dial("999").ok());
  EXPECT_EQ(state, CallState::kFailed);
  EXPECT_EQ(a->state(), LineState::kReorderTone);
  Advance(100);
  std::vector<Sample> heard(800);
  a->ReadRx(heard);
  EXPECT_GT(Rms(heard), 0.05);  // reorder tone audible
}

TEST_F(ExchangeTest, BusyLineGetsBusyTone) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  ExchangeLine* c = exchange_.AddLine("300");
  ASSERT_TRUE(a->Dial("200").ok());
  ASSERT_TRUE(b->Answer().ok());

  CallState state = CallState::kIdle;
  c->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kProgress) {
      state = e.state;
    }
  });
  ASSERT_TRUE(c->Dial("200").ok());
  EXPECT_EQ(state, CallState::kBusy);
  EXPECT_EQ(c->state(), LineState::kBusyTone);
}

TEST_F(ExchangeTest, DialWhileOffHookFails) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  ASSERT_TRUE(a->Dial("200").ok());
  ASSERT_TRUE(b->Answer().ok());
  EXPECT_FALSE(a->Dial("300").ok());
}

TEST_F(ExchangeTest, AnswerWithoutRingFails) {
  ExchangeLine* a = exchange_.AddLine("100");
  EXPECT_FALSE(a->Answer().ok());
}

TEST_F(ExchangeTest, HangupNotifiesPeer) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  ASSERT_TRUE(a->Dial("200").ok());
  ASSERT_TRUE(b->Answer().ok());

  CallState b_state = CallState::kIdle;
  b->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kProgress) {
      b_state = e.state;
    }
  });
  a->HangUp();
  EXPECT_EQ(b_state, CallState::kHungUp);
  EXPECT_EQ(a->state(), LineState::kOnHook);
  EXPECT_EQ(b->state(), LineState::kOnHook);
}

TEST_F(ExchangeTest, AbandonedCallStopsRinging) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  ASSERT_TRUE(a->Dial("200").ok());
  a->HangUp();
  EXPECT_EQ(b->state(), LineState::kOnHook);
}

TEST_F(ExchangeTest, RingCadenceRepeats) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  int rings = 0;
  b->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kRing) {
      ++rings;
    }
  });
  ASSERT_TRUE(a->Dial("200").ok());
  Advance(13000);  // 13 s: initial ring + two cadence repeats (6 s period)
  EXPECT_EQ(rings, 3);
}

TEST_F(ExchangeTest, DtmfTravelsInBandAndOutOfBand) {
  ExchangeLine* a = exchange_.AddLine("100");
  ExchangeLine* b = exchange_.AddLine("200");
  ASSERT_TRUE(a->Dial("200").ok());
  ASSERT_TRUE(b->Answer().ok());

  std::string digits;
  b->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kDtmf) {
      digits.push_back(e.digit);
    }
  });

  a->SendDtmf("73");
  std::vector<Sample> heard;
  for (int i = 0; i < 50; ++i) {
    exchange_.Advance(160);
    std::vector<Sample> chunk(160);
    b->ReadRx(chunk);
    heard.insert(heard.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(digits, "73");
  DtmfDetector detector(8000);
  detector.Process(heard);
  EXPECT_EQ(detector.TakeDigits(), "73");
}

// ---------------------------------------------------------------------------
// Far end & board
// ---------------------------------------------------------------------------

TEST(FarEndTest, ScriptedCallerAnswersAndRecords) {
  Board board({.phone_lines = 1});
  FarEndParty* party = board.AddFarEnd("555-5000");
  party->AnswerAfterRings(1).RecordMs(500).HangUp();

  PhoneLineUnit* phone = board.phone_lines()[0];
  ASSERT_TRUE(phone->Dial("555-5000").ok());

  // Pump: the party answers, records 500 ms of what we send, hangs up.
  std::vector<Sample> voice(160, 2222);
  for (int i = 0; i < 100 && !party->done(); ++i) {
    phone->tx_codec().WritePlayback(voice);
    board.Advance(160);
  }
  EXPECT_TRUE(party->done());
  int matching = 0;
  for (Sample s : party->recorded()) {
    if (s == 2222) {
      ++matching;
    }
  }
  EXPECT_GT(matching, 3000);  // most of the 4000 recorded samples
}

TEST(FarEndTest, DialAndWaitReachesConnected) {
  Board board({.phone_lines = 1});
  FarEndParty* party = board.AddFarEnd("555-5000");
  party->DialAndWait("555-0100").WaitMs(100).HangUp();

  // The workstation answers by hand.
  PhoneLineUnit* phone = board.phone_lines()[0];
  bool rang = false;
  phone->SetEventSink([&](const ExchangeLine::Event& e) {
    if (e.type == ExchangeLine::Event::Type::kRing) {
      rang = true;
    }
  });
  for (int i = 0; i < 20 && !rang; ++i) {
    board.Advance(160);
  }
  ASSERT_TRUE(rang);
  ASSERT_TRUE(phone->Answer().ok());
  for (int i = 0; i < 100 && !party->done(); ++i) {
    board.Advance(160);
  }
  EXPECT_TRUE(party->done());
  EXPECT_EQ(party->last_progress(), CallState::kConnected);
}

TEST(BoardTest, DefaultBoardShape) {
  Board board({});
  EXPECT_EQ(board.speakers().size(), 1u);
  EXPECT_EQ(board.microphones().size(), 1u);
  EXPECT_EQ(board.phone_lines().size(), 1u);
  EXPECT_EQ(board.devices().size(), 3u);
  EXPECT_EQ(board.phone_lines()[0]->line()->number(), "555-0100");
  // Domains: desktop for speaker+mic, separate for the line.
  EXPECT_EQ(board.speakers()[0]->ambient_domain(), kDesktopDomain);
  EXPECT_EQ(board.microphones()[0]->ambient_domain(), kDesktopDomain);
  EXPECT_EQ(board.phone_lines()[0]->ambient_domain(), kPhoneDomainBase);
}

TEST(BoardTest, MicrophonePendingAudioIsHeard) {
  Board board({});
  MicrophoneUnit* mic = board.microphones()[0];
  std::vector<Sample> speech(800, 4321);
  mic->AddPendingAudio(speech);
  board.Advance(800);
  std::vector<Sample> captured(800);
  size_t got = mic->codec().ReadCapture(captured);
  ASSERT_EQ(got, 800u);
  EXPECT_EQ(captured[0], 4321);
}

TEST(BoardTest, MicrophoneSourceFillsAfterPending) {
  Board board({});
  MicrophoneUnit* mic = board.microphones()[0];
  mic->set_source([](std::span<Sample> block) {
    for (Sample& s : block) {
      s = 99;
    }
  });
  mic->AddPendingAudio(std::vector<Sample>(80, 11));
  board.Advance(160);
  std::vector<Sample> captured(160);
  mic->codec().ReadCapture(captured);
  EXPECT_EQ(captured[0], 11);
  EXPECT_EQ(captured[100], 99);
}

TEST(BoardTest, SpeakerSinkCallbackStreams) {
  Board board({});
  SpeakerUnit* speaker = board.speakers()[0];
  size_t streamed = 0;
  speaker->set_sink([&](std::span<const Sample> block) { streamed += block.size(); });
  speaker->codec().WritePlayback(std::vector<Sample>(320, 1));
  board.Advance(160);
  board.Advance(160);
  EXPECT_EQ(streamed, 320u);
}

TEST(BoardTest, FramesElapsedAccumulates) {
  Board board({});
  board.Advance(160);
  board.Advance(160);
  EXPECT_EQ(board.frames_elapsed(), 320);
}

}  // namespace
}  // namespace aud
