// Unit tests for src/common: Status/Result, clocks, ring buffer, byte I/O.

#include <gtest/gtest.h>

#include <thread>

#include "src/common/byte_io.h"
#include "src/common/clock.h"
#include "src/common/ids.h"
#include "src/common/ring_buffer.h"
#include "src/common/status.h"

namespace aud {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kBadMatch, "encodings differ");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kBadMatch);
  EXPECT_EQ(s.ToString(), "BadMatch: encodings differ");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kTimeout); ++i) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(i)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(ErrorCode::kNoDevice, "none");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoDevice);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.take();
  EXPECT_EQ(v, "hello");
}

TEST(IdsTest, ClientBlocksDontOverlapServerRange) {
  for (uint32_t i = 0; i < 100; ++i) {
    ResourceId base = ClientIdBaseFor(i);
    EXPECT_FALSE(IsServerId(base));
    EXPECT_FALSE(IsServerId(base + kClientIdBlockSize - 1));
  }
  EXPECT_TRUE(IsServerId(kServerIdBase));
}

TEST(ClockTest, SampleTickConversionsRoundTrip) {
  EXPECT_EQ(SamplesToTicks(8000, 8000), kTicksPerSecond);
  EXPECT_EQ(TicksToSamples(kTicksPerSecond, 8000), 8000);
  EXPECT_EQ(SamplesToTicks(160, 8000), 20 * kTicksPerMillisecond);
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(500);
  EXPECT_EQ(clock.Now(), 500);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.AdvanceTo(400);  // no going back
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ClockTest, VirtualClockSkewRunsFast) {
  VirtualClock fast(/*skew_ppm=*/100000);  // +10%
  fast.Advance(1000000);
  EXPECT_EQ(fast.Now(), 1100000);
}

TEST(ClockTest, VirtualClockSkewRunsSlow) {
  VirtualClock slow(/*skew_ppm=*/-100000);
  slow.Advance(1000000);
  EXPECT_EQ(slow.Now(), 900000);
}

TEST(ClockTest, VirtualClockWakesSleepers) {
  VirtualClock clock;
  std::thread waiter([&] { clock.SleepUntil(1000); });
  clock.Advance(1000);
  waiter.join();
  EXPECT_GE(clock.Now(), 1000);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock clock;
  Ticks a = clock.Now();
  Ticks b = clock.Now();
  EXPECT_GE(b, a);
}

TEST(RingBufferTest, WriteThenRead) {
  RingBuffer<int16_t> ring(8);
  std::vector<int16_t> in = {1, 2, 3, 4};
  EXPECT_EQ(ring.Write(in), 4u);
  EXPECT_EQ(ring.size(), 4u);
  std::vector<int16_t> out(4);
  EXPECT_EQ(ring.Read(out), 4u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  RingBuffer<int16_t> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(RingBufferTest, WriteStopsWhenFull) {
  RingBuffer<int16_t> ring(4);
  std::vector<int16_t> in = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.Write(in), 4u);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.Write(in), 0u);
}

TEST(RingBufferTest, WrapAroundPreservesOrder) {
  RingBuffer<int16_t> ring(4);
  std::vector<int16_t> chunk = {1, 2, 3};
  std::vector<int16_t> out(3);
  for (int pass = 0; pass < 10; ++pass) {
    ASSERT_EQ(ring.Write(chunk), 3u);
    ASSERT_EQ(ring.Read(out), 3u);
    ASSERT_EQ(out, chunk) << "pass " << pass;
  }
  EXPECT_EQ(ring.total_written(), 30u);
  EXPECT_EQ(ring.total_read(), 30u);
}

TEST(RingBufferTest, DiscardDropsOldest) {
  RingBuffer<int16_t> ring(8);
  std::vector<int16_t> in = {1, 2, 3, 4};
  ring.Write(in);
  EXPECT_EQ(ring.Discard(2), 2u);
  std::vector<int16_t> out(2);
  ring.Read(out);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(out[1], 4);
}

TEST(RingBufferTest, ConcurrentSpscTransfersAllData) {
  RingBuffer<int16_t> ring(1024);
  constexpr int kTotal = 100000;
  std::thread producer([&] {
    int sent = 0;
    while (sent < kTotal) {
      int16_t v = static_cast<int16_t>(sent % 1000);
      if (ring.Write(std::span<const int16_t>(&v, 1)) == 1) {
        ++sent;
      }
    }
  });
  int received = 0;
  bool in_order = true;
  while (received < kTotal) {
    int16_t v;
    if (ring.Read(std::span<int16_t>(&v, 1)) == 1) {
      if (v != static_cast<int16_t>(received % 1000)) {
        in_order = false;
      }
      ++received;
    }
  }
  producer.join();
  EXPECT_TRUE(in_order);
}

TEST(ByteIoTest, ScalarsRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123ll);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_EQ(r.ReadI64(), -1234567890123ll);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIoTest, LittleEndianOnTheWire) {
  ByteWriter w;
  w.WriteU32(0x01020304);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(ByteIoTest, StringsAndBlobsRoundTrip) {
  ByteWriter w;
  w.WriteString("hello, audio");
  std::vector<uint8_t> blob = {9, 8, 7};
  w.WriteBlob(blob);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "hello, audio");
  EXPECT_EQ(r.ReadBlob(), blob);
  EXPECT_TRUE(r.ok());
}

TEST(ByteIoTest, OverReadSaturatesSafely) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  r.ReadU32();  // over-reads: flags the reader
  EXPECT_FALSE(r.ok());
  // Once failed, further reads return zeros, never throw/UB.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_EQ(r.ReadString(), "");
}

TEST(ByteIoTest, MalformedStringLengthIsRejected) {
  ByteWriter w;
  w.WriteU32(1000000);  // length prefix far beyond the buffer
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(ByteIoTest, PatchU32BackFillsLength) {
  ByteWriter w;
  w.WriteU32(0);  // placeholder
  w.WriteU8(1);
  w.WriteU8(2);
  w.PatchU32(0, 2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU32(), 2u);
}

}  // namespace
}  // namespace aud
