// Decoded-PCM cache tests: hit/miss/byte accounting through GetServerStats,
// bit-identical speaker output with the cache on vs off (including the
// ADPCM-at-16kHz decode+resample case), invalidation when a sound is
// rewritten, and LRU eviction under a tiny budget.

#include <gtest/gtest.h>

#include "src/dsp/encoding.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class CacheTest : public ServerFixture {
 protected:
  ServerStatsReply Stats() {
    auto stats = client_->GetServerStats(false);
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? stats.value() : ServerStatsReply{};
  }
};

TEST_F(CacheTest, RepeatPlaysHitTheCacheAndShowInStats) {
  auto tone = TestTone(200);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  ExpectNoErrors();

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  ServerStatsReply after_first = Stats();
  EXPECT_GE(after_first.stats_version, 2u);
  EXPECT_EQ(after_first.decoded_cache_misses, 1u);
  EXPECT_EQ(after_first.decoded_cache_hits, 0u);
  // mu-law 8k decodes 1:1, two bytes of PCM per encoded byte.
  EXPECT_EQ(after_first.decoded_cache_bytes, tone.size() * sizeof(Sample));

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  ServerStatsReply after_third = Stats();
  EXPECT_EQ(after_third.decoded_cache_misses, 1u);
  EXPECT_EQ(after_third.decoded_cache_hits, 2u);
  EXPECT_EQ(after_third.decoded_cache_evictions, 0u);
  ExpectNoErrors();
}

TEST_F(CacheTest, DestroyingTheSoundReleasesCacheBytes) {
  auto tone = TestTone(100);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  ASSERT_GT(Stats().decoded_cache_bytes, 0u);

  client_->DestroySound(sound);
  Flush();
  EXPECT_EQ(Stats().decoded_cache_bytes, 0u);
  ExpectNoErrors();
}

TEST_F(CacheTest, RewriteInvalidatesAndReplaysNewData) {
  board_->speakers()[0]->set_capture_output(true);

  // DC marker sounds make the served generation visible in the output.
  std::vector<Sample> first(2000, 1000);
  ResourceId sound = toolkit_->UploadSound(first, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));

  // Overwrite the whole sound; the cached decode keyed by the old
  // generation must not be served again.
  std::vector<Sample> second(2000, -2000);
  StreamEncoder enc(Encoding::kPcm16);
  std::vector<uint8_t> bytes;
  enc.Encode(second, &bytes);
  client_->WriteSound(sound, 0, bytes);
  Flush();

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  StepMs(100);

  const std::vector<Sample>& played = board_->speakers()[0]->played();
  size_t old_gen = 0, new_gen = 0;
  for (Sample s : played) {
    old_gen += s == 1000 ? 1 : 0;
    new_gen += s == -2000 ? 1 : 0;
  }
  EXPECT_EQ(old_gen, first.size());
  EXPECT_EQ(new_gen, second.size());

  // Two distinct generations: two misses, and the second play's decode was
  // inserted under the new key.
  ServerStatsReply stats = Stats();
  EXPECT_EQ(stats.decoded_cache_misses, 2u);
  ExpectNoErrors();
}

TEST_F(CacheTest, TinyBudgetEvictsLeastRecentlyUsed) {
  // Budget fits one decoded sound (8000 bytes) but not two.
  ServerOptions options;
  options.decoded_cache_bytes = 10000;
  Init(BoardConfig{}, options);

  std::vector<Sample> a(4000, 700), b(4000, -900);
  ResourceId sa = toolkit_->UploadSound(a, {Encoding::kPcm16, 8000});
  ResourceId sb = toolkit_->UploadSound(b, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();
  ExpectNoErrors();

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sa));  // miss, resident
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sb));  // miss, evicts A
  ServerStatsReply stats = Stats();
  EXPECT_EQ(stats.decoded_cache_misses, 2u);
  EXPECT_EQ(stats.decoded_cache_evictions, 1u);
  EXPECT_EQ(stats.decoded_cache_bytes, b.size() * sizeof(Sample));

  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sa));  // A was evicted: miss again
  EXPECT_EQ(Stats().decoded_cache_misses, 3u);
  ExpectNoErrors();
}

TEST_F(CacheTest, DisabledCacheNeverCounts) {
  ServerOptions options;
  options.decoded_cache_bytes = 0;
  Init(BoardConfig{}, options);

  auto tone = TestTone(100);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));

  ServerStatsReply stats = Stats();
  EXPECT_EQ(stats.decoded_cache_hits, 0u);
  EXPECT_EQ(stats.decoded_cache_misses, 0u);
  EXPECT_EQ(stats.decoded_cache_bytes, 0u);
  ExpectNoErrors();
}

// Runs the same two-play workload with the given cache budget and returns
// everything the speaker played.
std::vector<Sample> PlayTwiceAndCapture(size_t cache_bytes) {
  Board board((BoardConfig()));
  ServerOptions options;
  options.decoded_cache_bytes = cache_bytes;
  AudioServer server(&board, options);
  auto [client_end, server_end] = CreatePipePair();
  server.AddConnection(std::move(server_end));
  auto client = AudioConnection::Open(std::move(client_end), "cache-compare");
  AudioToolkit toolkit(client.get());
  toolkit.set_time_pump([&server] { server.StepFrames(160); });
  board.speakers()[0]->set_capture_output(true);

  // A 16 kHz ADPCM sound: playback runs the stateful decoder AND the
  // 16k -> 8k resampler, the two stages the cache snapshots.
  std::vector<Sample> signal(3210);
  for (size_t i = 0; i < signal.size(); ++i) {
    signal[i] = static_cast<Sample>(9000.0 * std::sin(0.07 * static_cast<double>(i)));
  }
  ResourceId sound = toolkit.UploadSound(signal, {Encoding::kAdpcm4, 16000});
  auto chain = toolkit.BuildPlaybackChain();
  // Both plays in one queue: gapless back-to-back, so the audio between
  // first and last nonzero sample is timing-independent. (Separate
  // PlayAndWait calls would leave a pump-scheduling-dependent silence gap
  // between the plays.)
  client->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1),
                               PlayCommand(chain.player, sound, 2)});
  client->StartQueue(chain.loud);
  EXPECT_TRUE(toolkit.WaitCommandDone(2, 30000));
  server.StepFrames(1600);

  std::vector<Sample> played = board.speakers()[0]->played();
  server.Shutdown();

  // How much silence brackets the plays depends on wall-clock pump timing;
  // trim it so only the deterministic content is compared.
  size_t first = 0;
  while (first < played.size() && played[first] == 0) {
    ++first;
  }
  size_t last = played.size();
  while (last > first && played[last - 1] == 0) {
    --last;
  }
  return std::vector<Sample>(played.begin() + static_cast<ptrdiff_t>(first),
                             played.begin() + static_cast<ptrdiff_t>(last));
}

TEST(CacheBitIdentity, CachedPlaybackMatchesIncrementalExactly) {
  std::vector<Sample> cached = PlayTwiceAndCapture(8 * 1024 * 1024);
  std::vector<Sample> incremental = PlayTwiceAndCapture(0);
  ASSERT_GT(cached.size(), 1000u);  // both plays actually produced audio
  ASSERT_EQ(cached.size(), incremental.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    ASSERT_EQ(cached[i], incremental[i]) << "first divergence at sample " << i;
  }
}

}  // namespace
}  // namespace aud
