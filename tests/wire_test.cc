// Wire-protocol tests: attribute lists, message encode/decode round trips,
// header framing, and malformed-input robustness.

#include <gtest/gtest.h>

#include "src/wire/attributes.h"
#include "src/wire/messages.h"
#include "src/wire/protocol.h"

namespace aud {
namespace {

template <typename T>
T RoundTrip(const T& in) {
  ByteWriter w;
  in.Encode(&w);
  ByteReader r(w.bytes());
  T out = T::Decode(&r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

TEST(AttrListTest, TypedAccessors) {
  AttrList attrs;
  attrs.SetU32(AttrTag::kSampleRate, 8000);
  attrs.SetI32(AttrTag::kDeviceId, -5);
  attrs.SetString(AttrTag::kName, "speaker0");
  attrs.SetBool(AttrTag::kAgc, true);

  EXPECT_EQ(attrs.GetU32(AttrTag::kSampleRate), 8000u);
  EXPECT_EQ(attrs.GetI32(AttrTag::kDeviceId), -5);
  EXPECT_EQ(attrs.GetString(AttrTag::kName), "speaker0");
  EXPECT_TRUE(attrs.GetBool(AttrTag::kAgc));
  EXPECT_FALSE(attrs.GetBool(AttrTag::kCallerId));
  EXPECT_EQ(attrs.GetU32(AttrTag::kPosition), std::nullopt);
}

TEST(AttrListTest, WrongTypeLookupIsNullopt) {
  AttrList attrs;
  attrs.SetString(AttrTag::kName, "x");
  EXPECT_EQ(attrs.GetU32(AttrTag::kName), std::nullopt);
}

TEST(AttrListTest, SetReplacesExisting) {
  AttrList attrs;
  attrs.SetU32(AttrTag::kSampleRate, 8000);
  attrs.SetU32(AttrTag::kSampleRate, 16000);
  EXPECT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs.GetU32(AttrTag::kSampleRate), 16000u);
}

TEST(AttrListTest, MergeOverwrites) {
  AttrList base;
  base.SetU32(AttrTag::kSampleRate, 8000);
  base.SetString(AttrTag::kName, "a");
  AttrList overlay;
  overlay.SetString(AttrTag::kName, "b");
  overlay.SetBool(AttrTag::kAgc, true);
  base.Merge(overlay);
  EXPECT_EQ(base.GetString(AttrTag::kName), "b");
  EXPECT_EQ(base.GetU32(AttrTag::kSampleRate), 8000u);
  EXPECT_TRUE(base.GetBool(AttrTag::kAgc));
}

TEST(AttrListTest, EncodeDecodeRoundTrip) {
  AttrList attrs;
  attrs.SetU32(AttrTag::kClass, 3);
  attrs.SetI32(AttrTag::kDeviceId, 42);
  attrs.SetString(AttrTag::kPhoneNumber, "555-0100");
  ByteWriter w;
  attrs.Encode(&w);
  ByteReader r(w.bytes());
  AttrList out = AttrList::Decode(&r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(out, attrs);
}

TEST(AttrListTest, RemoveErasesTag) {
  AttrList attrs;
  attrs.SetU32(AttrTag::kClass, 1);
  EXPECT_TRUE(attrs.Remove(AttrTag::kClass));
  EXPECT_FALSE(attrs.Remove(AttrTag::kClass));
  EXPECT_TRUE(attrs.empty());
}

TEST(HeaderTest, RoundTripAndSize) {
  MessageHeader h;
  h.type = MessageType::kEvent;
  h.code = 17;
  h.length = 4096;
  h.sequence = 0xAABBCCDD;
  ByteWriter w;
  h.Encode(&w);
  EXPECT_EQ(w.size(), kHeaderSize);
  ByteReader r(w.bytes());
  MessageHeader out = MessageHeader::Decode(&r);
  EXPECT_EQ(out.type, h.type);
  EXPECT_EQ(out.code, h.code);
  EXPECT_EQ(out.length, h.length);
  EXPECT_EQ(out.sequence, h.sequence);
}

TEST(SetupTest, RequestReplyRoundTrip) {
  SetupRequest req;
  req.client_name = "voicemail";
  SetupRequest req2 = RoundTrip(req);
  EXPECT_EQ(req2.magic, kSetupMagic);
  EXPECT_EQ(req2.client_name, "voicemail");

  SetupReply reply;
  reply.success = 1;
  reply.id_base = 0x100000;
  reply.id_count = 1 << 20;
  reply.device_loud = 0xF0000000;
  reply.server_name = "netaudio";
  SetupReply reply2 = RoundTrip(reply);
  EXPECT_EQ(reply2.id_base, reply.id_base);
  EXPECT_EQ(reply2.device_loud, reply.device_loud);
  EXPECT_EQ(reply2.server_name, "netaudio");
}

TEST(CommandSpecTest, RoundTripWithArgs) {
  CommandSpec spec;
  spec.device = 77;
  spec.command = DeviceCommand::kPlay;
  spec.tag = 123;
  spec.args = PlayArgs{55, 100, 2000}.Encode();
  CommandSpec out = RoundTrip(spec);
  EXPECT_EQ(out.device, 77u);
  EXPECT_EQ(out.command, DeviceCommand::kPlay);
  EXPECT_EQ(out.tag, 123u);
  PlayArgs args = PlayArgs::Decode(out.args);
  EXPECT_EQ(args.sound, 55u);
  EXPECT_EQ(args.start_sample, 100);
  EXPECT_EQ(args.end_sample, 2000);
}

TEST(CommandArgsTest, AllArgTypesRoundTrip) {
  {
    RecordArgs in{9, kTerminateOnPause | kTerminateOnHangup, 30000};
    RecordArgs out = RecordArgs::Decode(in.Encode());
    EXPECT_EQ(out.sound, 9u);
    EXPECT_EQ(out.termination, in.termination);
    EXPECT_EQ(out.max_ms, 30000u);
  }
  {
    StringArg out = StringArg::Decode(StringArg{"555-1212"}.Encode());
    EXPECT_EQ(out.value, "555-1212");
  }
  {
    GainArgs out = GainArgs::Decode(GainArgs{-500}.Encode());
    EXPECT_EQ(out.gain, -500);
  }
  {
    InputGainArgs out = InputGainArgs::Decode(InputGainArgs{3, 2500}.Encode());
    EXPECT_EQ(out.input, 3u);
    EXPECT_EQ(out.gain, 2500);
  }
  {
    DelayArgs out = DelayArgs::Decode(DelayArgs{5000}.Encode());
    EXPECT_EQ(out.milliseconds, 5000u);
  }
  {
    TrainArgs out = TrainArgs::Decode(TrainArgs{"yes", 12}.Encode());
    EXPECT_EQ(out.word, "yes");
    EXPECT_EQ(out.sound, 12u);
  }
  {
    WordListArgs in;
    in.words = {"play", "stop", "next"};
    WordListArgs out = WordListArgs::Decode(in.Encode());
    EXPECT_EQ(out.words, in.words);
  }
  {
    ExceptionListArgs in;
    in.entries = {{"Schmandt", "SH M AE N T"}, {"DECstation", "D EH K S T EY SH AH N"}};
    ExceptionListArgs out = ExceptionListArgs::Decode(in.Encode());
    EXPECT_EQ(out.entries, in.entries);
  }
  {
    NoteArgs out = NoteArgs::Decode(NoteArgs{69, 120, 500}.Encode());
    EXPECT_EQ(out.midi_note, 69);
    EXPECT_EQ(out.velocity, 120);
    EXPECT_EQ(out.duration_ms, 500u);
  }
  {
    VoiceArgs in{2, 5, 60, 8000, 300};
    VoiceArgs out = VoiceArgs::Decode(in.Encode());
    EXPECT_EQ(out.waveform, 2);
    EXPECT_EQ(out.sustain_centi, 8000);
    EXPECT_EQ(out.release_ms, 300);
  }
  {
    CrossbarStateArgs in;
    in.routes = {{0, 1, 1}, {1, 0, 0}};
    CrossbarStateArgs out = CrossbarStateArgs::Decode(in.Encode());
    ASSERT_EQ(out.routes.size(), 2u);
    EXPECT_EQ(out.routes[0].input, 0);
    EXPECT_EQ(out.routes[0].output, 1);
    EXPECT_EQ(out.routes[1].enabled, 0);
  }
  {
    ValuesArgs in;
    in.values.SetU32(AttrTag::kPitch, 140);
    ValuesArgs out = ValuesArgs::Decode(in.Encode());
    EXPECT_EQ(out.values.GetU32(AttrTag::kPitch), 140u);
  }
}

TEST(RequestsTest, CreateWireRoundTrip) {
  CreateWireReq req;
  req.id = 1;
  req.src_device = 2;
  req.src_port = 1;
  req.dst_device = 3;
  req.dst_port = 0;
  req.has_format = 1;
  req.format = {Encoding::kAdpcm4, 16000};
  CreateWireReq out = RoundTrip(req);
  EXPECT_EQ(out.src_device, 2u);
  EXPECT_EQ(out.format.encoding, Encoding::kAdpcm4);
  EXPECT_EQ(out.format.sample_rate_hz, 16000u);
}

TEST(RequestsTest, EnqueueCommandsRoundTrip) {
  EnqueueCommandsReq req;
  req.loud = 99;
  CommandSpec co;
  co.command = DeviceCommand::kCoBegin;
  req.commands.push_back(co);
  CommandSpec play;
  play.device = 5;
  play.command = DeviceCommand::kPlay;
  play.args = PlayArgs{7}.Encode();
  req.commands.push_back(play);
  CommandSpec end;
  end.command = DeviceCommand::kCoEnd;
  req.commands.push_back(end);

  EnqueueCommandsReq out = RoundTrip(req);
  ASSERT_EQ(out.commands.size(), 3u);
  EXPECT_EQ(out.commands[0].command, DeviceCommand::kCoBegin);
  EXPECT_EQ(out.commands[1].device, 5u);
}

TEST(RepliesTest, DeviceLoudReplyRoundTrip) {
  DeviceLoudReply reply;
  reply.root = kServerIdBase;
  DeviceInfo dev;
  dev.id = kServerIdBase + 1;
  dev.parent = kServerIdBase;
  dev.device_class = DeviceClass::kTelephone;
  dev.attrs.SetString(AttrTag::kPhoneNumber, "555-0100");
  reply.devices.push_back(dev);
  WireInfo wire;
  wire.id = kServerIdBase + 9;
  reply.hard_wires.push_back(wire);

  DeviceLoudReply out = RoundTrip(reply);
  ASSERT_EQ(out.devices.size(), 1u);
  EXPECT_EQ(out.devices[0].device_class, DeviceClass::kTelephone);
  EXPECT_EQ(out.devices[0].attrs.GetString(AttrTag::kPhoneNumber), "555-0100");
  ASSERT_EQ(out.hard_wires.size(), 1u);
}

TEST(EventsTest, EventMessageRoundTrip) {
  EventMessage event;
  event.type = EventType::kSyncMark;
  event.resource = 12;
  event.server_time = 123456789;
  event.args = SyncMarkArgs{8000, 1000000, 16000}.Encode();
  EventMessage out = RoundTrip(event);
  EXPECT_EQ(out.type, EventType::kSyncMark);
  SyncMarkArgs mark = SyncMarkArgs::Decode(out.args);
  EXPECT_EQ(mark.position_samples, 8000u);
  EXPECT_EQ(mark.total_samples, 16000u);
}

TEST(EventsTest, AllEventArgTypesRoundTrip) {
  {
    CommandDoneArgs out = CommandDoneArgs::Decode(CommandDoneArgs{4, 5, 1}.Encode());
    EXPECT_EQ(out.tag, 4u);
    EXPECT_EQ(out.aborted, 1);
  }
  {
    TelephoneRingArgs in;
    in.caller_id = "Bob";
    in.line = 2;
    TelephoneRingArgs out = TelephoneRingArgs::Decode(in.Encode());
    EXPECT_EQ(out.caller_id, "Bob");
    EXPECT_EQ(out.line, 2u);
  }
  {
    CallProgressArgs out =
        CallProgressArgs::Decode(CallProgressArgs{CallState::kBusy}.Encode());
    EXPECT_EQ(out.state, CallState::kBusy);
  }
  {
    DtmfReceivedArgs out = DtmfReceivedArgs::Decode(DtmfReceivedArgs{'#'}.Encode());
    EXPECT_EQ(out.digit, '#');
  }
  {
    RecorderStoppedArgs out =
        RecorderStoppedArgs::Decode(RecorderStoppedArgs{1, 8000}.Encode());
    EXPECT_EQ(out.reason, 1);
    EXPECT_EQ(out.samples, 8000u);
  }
  {
    RecognitionArgs in;
    in.word = "rewind";
    in.score = 9001;
    RecognitionArgs out = RecognitionArgs::Decode(in.Encode());
    EXPECT_EQ(out.word, "rewind");
    EXPECT_EQ(out.score, 9001u);
  }
  {
    PropertyNotifyArgs in;
    in.name = "DOMAIN";
    in.deleted = 1;
    PropertyNotifyArgs out = PropertyNotifyArgs::Decode(in.Encode());
    EXPECT_EQ(out.name, "DOMAIN");
    EXPECT_EQ(out.deleted, 1);
  }
  {
    MapRequestArgs out = MapRequestArgs::Decode(MapRequestArgs{31, 1}.Encode());
    EXPECT_EQ(out.loud, 31u);
    EXPECT_EQ(out.raise, 1);
  }
}

TEST(ErrorsTest, ErrorMessageRoundTrip) {
  ErrorMessage error;
  error.code = ErrorCode::kBadWiring;
  error.resource = 42;
  error.opcode = static_cast<uint16_t>(Opcode::kCreateWire);
  error.detail = "hard-wired constraint";
  ErrorMessage out = RoundTrip(error);
  EXPECT_EQ(out.code, ErrorCode::kBadWiring);
  EXPECT_EQ(out.resource, 42u);
  EXPECT_EQ(out.detail, "hard-wired constraint");
}

TEST(ProtocolTest, QueuedOnlyClassification) {
  EXPECT_TRUE(IsQueuedOnlyCommand(DeviceCommand::kPlay));
  EXPECT_TRUE(IsQueuedOnlyCommand(DeviceCommand::kRecord));
  EXPECT_TRUE(IsQueuedOnlyCommand(DeviceCommand::kDial));
  EXPECT_TRUE(IsQueuedOnlyCommand(DeviceCommand::kCoBegin));
  EXPECT_FALSE(IsQueuedOnlyCommand(DeviceCommand::kStop));
  EXPECT_FALSE(IsQueuedOnlyCommand(DeviceCommand::kChangeGain));
  EXPECT_FALSE(IsQueuedOnlyCommand(DeviceCommand::kHangUp));
}

TEST(ProtocolTest, NamesAreDefined) {
  EXPECT_EQ(DeviceClassName(DeviceClass::kSpeechSynthesizer), "speech-synthesizer");
  EXPECT_EQ(DeviceCommandName(DeviceCommand::kSendDtmf), "SendDTMF");
  EXPECT_EQ(EventTypeName(EventType::kSyncMark), "SyncMark");
  EXPECT_EQ(CallStateName(CallState::kHungUp), "hung-up");
  EXPECT_EQ(QueueStateName(QueueState::kServerPaused), "server-paused");
}

TEST(FrameTest, FrameMessageLayout) {
  std::vector<uint8_t> payload = {1, 2, 3};
  auto frame = FrameMessage(MessageType::kRequest, 7, 9, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + 3);
  ByteReader r(frame);
  MessageHeader h = MessageHeader::Decode(&r);
  EXPECT_EQ(h.type, MessageType::kRequest);
  EXPECT_EQ(h.code, 7);
  EXPECT_EQ(h.length, 3u);
  EXPECT_EQ(h.sequence, 9u);
}

TEST(RobustnessTest, TruncatedMessagesDecodeWithoutCrash) {
  // Every truncation of a valid CreateVirtualDeviceReq must decode without
  // UB and flag !ok (except trivially-valid prefixes).
  CreateVirtualDeviceReq req;
  req.id = 1;
  req.loud = 2;
  req.device_class = DeviceClass::kMixer;
  req.attrs.SetString(AttrTag::kName, "mix");
  ByteWriter w;
  req.Encode(&w);
  for (size_t len = 0; len < w.bytes().size(); ++len) {
    ByteReader r(std::span<const uint8_t>(w.bytes()).first(len));
    CreateVirtualDeviceReq::Decode(&r);
    // Must not crash; most truncations flag an error.
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Malformed-frame decode suite: DecodeHeaderStrict must turn every class of
// corrupt header into a clean Status instead of garbage or UB. These run
// under ASan/UBSan/TSan in CI, so any out-of-bounds read here is fatal.
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeHeader(const MessageHeader& h) {
  ByteWriter w;
  h.Encode(&w);
  return {w.bytes().begin(), w.bytes().end()};
}

TEST(StrictHeaderTest, WellFormedHeaderRoundTrips) {
  MessageHeader h;
  h.type = MessageType::kEvent;
  h.code = 7;
  h.length = 512;
  h.sequence = 41;
  Result<MessageHeader> decoded = DecodeHeaderStrict(EncodeHeader(h));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MessageType::kEvent);
  EXPECT_EQ(decoded.value().code, 7);
  EXPECT_EQ(decoded.value().length, 512u);
  EXPECT_EQ(decoded.value().sequence, 41u);
}

TEST(StrictHeaderTest, TruncatedHeaderRejected) {
  std::vector<uint8_t> bytes = EncodeHeader(MessageHeader{});
  for (size_t cut = 0; cut < kHeaderSize; ++cut) {
    std::vector<uint8_t> partial(bytes.begin(), bytes.begin() + cut);
    Result<MessageHeader> decoded = DecodeHeaderStrict(partial);
    ASSERT_FALSE(decoded.ok()) << "accepted " << cut << "-byte header";
    EXPECT_EQ(decoded.status().code(), ErrorCode::kConnection);
    EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
  }
}

TEST(StrictHeaderTest, OversizedLengthRejected) {
  MessageHeader h;
  h.length = kMaxPayload + 1;
  Result<MessageHeader> decoded = DecodeHeaderStrict(EncodeHeader(h));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kConnection);
  EXPECT_NE(decoded.status().message().find("exceeds limit"), std::string::npos);
}

TEST(StrictHeaderTest, MaxPayloadLengthStillAccepted) {
  MessageHeader h;
  h.length = kMaxPayload;
  EXPECT_TRUE(DecodeHeaderStrict(EncodeHeader(h)).ok());
}

TEST(StrictHeaderTest, NonZeroReservedByteRejected) {
  std::vector<uint8_t> bytes = EncodeHeader(MessageHeader{});
  bytes[1] = 0xAB;
  Result<MessageHeader> decoded = DecodeHeaderStrict(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kConnection);
  EXPECT_NE(decoded.status().message().find("reserved"), std::string::npos);
}

TEST(StrictHeaderTest, UnknownMessageTypeRejected) {
  for (uint8_t type : {uint8_t{0}, uint8_t{5}, uint8_t{0xFF}}) {
    std::vector<uint8_t> bytes = EncodeHeader(MessageHeader{});
    bytes[0] = type;
    Result<MessageHeader> decoded = DecodeHeaderStrict(bytes);
    ASSERT_FALSE(decoded.ok()) << "accepted message type " << int{type};
    EXPECT_EQ(decoded.status().code(), ErrorCode::kConnection);
  }
}

TEST(StrictHeaderTest, TrailingBytesAfterHeaderIgnored) {
  // The framer hands in exactly kHeaderSize bytes, but a larger buffer must
  // decode the leading header and ignore the rest.
  std::vector<uint8_t> bytes = EncodeHeader(MessageHeader{});
  bytes.resize(bytes.size() + 5, 0xEE);
  EXPECT_TRUE(DecodeHeaderStrict(bytes).ok());
}

TEST(StrictHeaderTest, UnknownRequestOpcodeIsBadRequest) {
  MessageHeader h;
  h.type = MessageType::kRequest;
  h.code = static_cast<uint16_t>(Opcode::kOpcodeCount);
  Status status = ValidateRequestHeader(h);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kBadRequest);

  h.code = kSetupOpcode;  // setup is only legal as the first frame
  EXPECT_EQ(ValidateRequestHeader(h).code(), ErrorCode::kBadRequest);
}

TEST(StrictHeaderTest, EveryRealOpcodeValidates) {
  for (uint16_t code = 0; code < static_cast<uint16_t>(Opcode::kOpcodeCount); ++code) {
    MessageHeader h;
    h.type = MessageType::kRequest;
    h.code = code;
    EXPECT_TRUE(ValidateRequestHeader(h).ok()) << "opcode " << code;
  }
}

TEST(StrictHeaderTest, NonRequestTypesSkipOpcodeCheck) {
  // Event/error codes live in their own namespaces; only requests carry
  // opcodes.
  MessageHeader h;
  h.type = MessageType::kEvent;
  h.code = 0xFFFE;
  EXPECT_TRUE(ValidateRequestHeader(h).ok());
}

}  // namespace
}  // namespace aud
