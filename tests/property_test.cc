// Property-style parameterized sweeps over invariants: resampler rate
// pairs, every encoding end-to-end through the server, gain laws, DTW
// metric properties, and command-queue transition exactness at arbitrary
// lengths.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/encoding.h"
#include "src/dsp/gain.h"
#include "src/dsp/goertzel.h"
#include "src/dsp/resampler.h"
#include "src/recognize/dtw.h"
#include "src/synth/synthesizer.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

// ---------------------------------------------------------------------------
// Resampler: for any (in, out) rate pair, output count tracks the ratio and
// a pure tone stays at its frequency.
// ---------------------------------------------------------------------------

class ResamplerSweep
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(ResamplerSweep, CountAndFrequencyInvariants) {
  auto [in_rate, out_rate] = GetParam();
  std::vector<Sample> tone;
  SineOscillator osc(440.0, in_rate, 0.5);
  osc.Generate(in_rate, &tone);  // 1 s

  Resampler resampler(in_rate, out_rate);
  std::vector<Sample> out;
  resampler.Process(tone, &out);

  // Output count within a handful of samples of the exact ratio.
  EXPECT_NEAR(static_cast<double>(out.size()), static_cast<double>(out_rate), 8.0);

  // The tone is still 440 Hz (only checkable if 440 < Nyquist of both).
  if (out_rate > 1000) {
    double on = GoertzelPower(std::span<const Sample>(out).first(
                                  std::min<size_t>(out.size(), out_rate / 2)),
                              440, out_rate);
    double off = GoertzelPower(std::span<const Sample>(out).first(
                                   std::min<size_t>(out.size(), out_rate / 2)),
                               660, out_rate);
    EXPECT_GT(on, 0.05);
    EXPECT_LT(off, on / 5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatePairs, ResamplerSweep,
    ::testing::Values(std::pair{8000u, 8000u}, std::pair{8000u, 11025u},
                      std::pair{8000u, 16000u}, std::pair{8000u, 44100u},
                      std::pair{11025u, 8000u}, std::pair{16000u, 8000u},
                      std::pair{44100u, 8000u}, std::pair{44100u, 16000u},
                      std::pair{16000u, 44100u}),
    [](const auto& param_info) {
      return std::to_string(param_info.param.first) + "to" + std::to_string(param_info.param.second);
    });

// ---------------------------------------------------------------------------
// Server playback sweep: every encoding x rate survives the full path.
// ---------------------------------------------------------------------------

struct FormatCase {
  Encoding encoding;
  uint32_t rate;
};

class ServerFormatSweep : public ServerFixture,
                          public ::testing::WithParamInterface<FormatCase> {
 protected:
  void SetUp() override { ServerFixture::SetUp(); }
};

TEST_P(ServerFormatSweep, ToneSurvivesServerPath) {
  const FormatCase& format_case = GetParam();
  board_->speakers()[0]->set_capture_output(true);

  std::vector<Sample> tone;
  SineOscillator osc(440.0, format_case.rate, 0.4);
  osc.Generate(format_case.rate / 2, &tone);  // 0.5 s at the sound's rate
  ResourceId sound =
      toolkit_->UploadSound(tone, {format_case.encoding, format_case.rate});
  auto chain = toolkit_->BuildPlaybackChain();
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound));
  StepMs(200);

  // 0.5 s of a 440 Hz tone at the board's 8 kHz: dominant bin is 440.
  const auto& played = board_->speakers()[0]->played();
  size_t start = 0;
  while (start < played.size() && std::abs(played[start]) < 500) {
    ++start;
  }
  ASSERT_LT(start + 2048, played.size()) << "no audible playback";
  auto window = std::span<const Sample>(played).subspan(start + 256, 2048);
  double on = GoertzelPower(window, 440, 8000);
  double off = GoertzelPower(window, 740, 8000);
  EXPECT_GT(on, 0.01);
  EXPECT_LT(off, on / 3);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, ServerFormatSweep,
    ::testing::Values(FormatCase{Encoding::kMulaw8, 8000},
                      FormatCase{Encoding::kAlaw8, 8000},
                      FormatCase{Encoding::kPcm8, 8000},
                      FormatCase{Encoding::kPcm16, 8000},
                      FormatCase{Encoding::kAdpcm4, 8000},
                      FormatCase{Encoding::kPcm16, 16000},
                      FormatCase{Encoding::kMulaw8, 16000},
                      FormatCase{Encoding::kPcm16, 44100}),
    [](const auto& param_info) {
      return std::string(EncodingName(param_info.param.encoding)) + "_" +
             std::to_string(param_info.param.rate);
    });

// ---------------------------------------------------------------------------
// Gain laws.
// ---------------------------------------------------------------------------

class GainSweep : public ::testing::TestWithParam<int32_t> {};

TEST_P(GainSweep, LinearityAndBounds) {
  int32_t gain = GetParam();
  std::vector<Sample> samples;
  for (int v = -32768; v < 32768; v += 257) {
    samples.push_back(static_cast<Sample>(v));
  }
  auto original = samples;
  ApplyGain(samples, gain);
  for (size_t i = 0; i < samples.size(); ++i) {
    int64_t expected = static_cast<int64_t>(original[i]) * gain / kUnityGain;
    expected = std::clamp<int64_t>(expected, -32768, 32767);
    EXPECT_EQ(samples[i], expected) << "input " << original[i] << " gain " << gain;
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, GainSweep,
                         ::testing::Values(0, 1, 2500, 5000, 9999, 10000, 10001, 15000,
                                           20000, 100000));

// ---------------------------------------------------------------------------
// DTW metric-ish properties over synthesized words.
// ---------------------------------------------------------------------------

TEST(DtwProperties, SymmetryAndSelfIdentity) {
  TextToSpeech tts(8000);
  const char* words[] = {"one", "two", "three"};
  std::vector<std::vector<FeatureVector>> features;
  for (const char* word : words) {
    features.push_back(ExtractFeatures(tts.Synthesize(word), 8000));
  }
  for (const auto& f : features) {
    EXPECT_NEAR(DtwDistance(f, f), 0.0, 1e-9);
  }
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t j = 0; j < features.size(); ++j) {
      double d_ij = DtwDistance(features[i], features[j]);
      double d_ji = DtwDistance(features[j], features[i]);
      EXPECT_NEAR(d_ij, d_ji, 1e-9) << i << "," << j;
      if (i != j) {
        EXPECT_GT(d_ij, 0.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Queue-transition exactness at pseudo-random lengths (complements the
// fixed sweep in bench_queue_transition).
// ---------------------------------------------------------------------------

class TransitionSweep : public ServerFixture,
                        public ::testing::WithParamInterface<uint32_t> {};

TEST_P(TransitionSweep, RandomLengthsAreGapless) {
  // Deterministic LCG from the seed parameter.
  uint32_t state = GetParam();
  auto next = [&state](uint32_t lo, uint32_t hi) {
    state = state * 1664525u + 1013904223u;
    return lo + (state >> 8) % (hi - lo);
  };
  size_t a_len = next(50, 5000);
  size_t b_len = next(50, 5000);
  size_t c_len = next(50, 5000);

  board_->speakers()[0]->set_capture_output(true);
  std::vector<Sample> a(a_len, 1000);
  std::vector<Sample> b(b_len, 2000);
  std::vector<Sample> c(c_len, 3000);
  ResourceId sa = toolkit_->UploadSound(a, {Encoding::kPcm16, 8000});
  ResourceId sb = toolkit_->UploadSound(b, {Encoding::kPcm16, 8000});
  ResourceId sc = toolkit_->UploadSound(c, {Encoding::kPcm16, 8000});
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud,
                   {PlayCommand(chain.player, sa, 1), PlayCommand(chain.player, sb, 2),
                    PlayCommand(chain.player, sc, 3)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 60000));
  StepMs(2200);

  const auto& played = board_->speakers()[0]->played();
  size_t start = 0;
  while (start < played.size() && played[start] != 1000) {
    ++start;
  }
  ASSERT_LE(start + a_len + b_len + c_len, played.size());
  for (size_t i = 0; i < a_len; ++i) {
    ASSERT_EQ(played[start + i], 1000) << "A broken at " << i;
  }
  for (size_t i = 0; i < b_len; ++i) {
    ASSERT_EQ(played[start + a_len + i], 2000) << "B broken at " << i;
  }
  for (size_t i = 0; i < c_len; ++i) {
    ASSERT_EQ(played[start + a_len + b_len + i], 3000) << "C broken at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitionSweep,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 777777u));

}  // namespace
}  // namespace aud
