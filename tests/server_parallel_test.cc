// Parallel engine tick: island partitioning and serial/parallel output
// equivalence (ISSUE: island-partitioned produce/transform/consume).
//
// The contract under test (see server_state.h):
//   * PartitionIslands() splits the active graph into independent islands —
//     LOUD trees merge when they share a wire/mixer tree, a referenced
//     sound, a destructively-read physical device (microphone, phone
//     line), the phone exchange, or the recognizer vocabulary store.
//     Speakers do NOT merge islands (they are written only through
//     commutative mix accumulators).
//   * With ServerOptions::engine_threads > 1 the tick output is
//     bit-identical to the serial engine, including with shared mixers
//     and multiple physical outputs.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

// An in-process server + client + toolkit with explicit ServerOptions
// (ServerFixture always uses the defaults, so it cannot build the
// engine_threads > 1 twin).
class World {
 public:
  World(const BoardConfig& config, const ServerOptions& options)
      : board_(config), server_(&board_, options) {
    auto [client_end, server_end] = CreatePipePair();
    server_.AddConnection(std::move(server_end));
    client_ = AudioConnection::Open(std::move(client_end), "parallel-test");
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    toolkit_->set_time_pump([this] { server_.StepFrames(160); });
  }
  ~World() { server_.Shutdown(); }

  Board& board() { return board_; }
  AudioServer& server() { return server_; }
  AudioConnection& client() { return *client_; }
  AudioToolkit& toolkit() { return *toolkit_; }

 private:
  Board board_;
  AudioServer server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
};

size_t IslandCount(AudioServer& server) {
  MutexLock lock(&server.mutex());
  return server.state().PartitionIslands().size();
}

// Index of the island containing root LOUD `loud_id`, or -1 if inactive.
int IslandOf(AudioServer& server, ResourceId loud_id) {
  MutexLock lock(&server.mutex());
  const std::vector<EngineIsland>& islands = server.state().PartitionIslands();
  for (size_t k = 0; k < islands.size(); ++k) {
    for (const Loud* loud : islands[k].louds) {
      if (loud->id() == loud_id) {
        return static_cast<int>(k);
      }
    }
  }
  return -1;
}

// One second of a deterministic, chain-specific waveform.
std::vector<Sample> ChainTone(int i) {
  std::vector<Sample> pcm(8000);
  for (int j = 0; j < 8000; ++j) {
    pcm[static_cast<size_t>(j)] = static_cast<Sample>(((i * 37 + j * 11) % 2001) - 1000);
  }
  return pcm;
}

// -- Island partitioner ------------------------------------------------------

TEST(IslandPartitionTest, IndependentChainsAreSeparateIslands) {
  World world(BoardConfig{}, ServerOptions{});
  size_t base = IslandCount(world.server());

  auto c1 = world.toolkit().BuildPlaybackChain();
  auto c2 = world.toolkit().BuildPlaybackChain();
  auto c3 = world.toolkit().BuildPlaybackChain();
  ASSERT_TRUE(world.client().Sync().ok());

  // All three bind the same speaker, but speakers never merge islands.
  EXPECT_EQ(IslandCount(world.server()), base + 3);
  int i1 = IslandOf(world.server(), c1.loud);
  int i2 = IslandOf(world.server(), c2.loud);
  int i3 = IslandOf(world.server(), c3.loud);
  ASSERT_GE(i1, 0);
  ASSERT_GE(i2, 0);
  ASSERT_GE(i3, 0);
  EXPECT_NE(i1, i2);
  EXPECT_NE(i2, i3);
  EXPECT_NE(i1, i3);
}

TEST(IslandPartitionTest, SharedMixerTreeIsOneIsland) {
  World world(BoardConfig{}, ServerOptions{});
  AudioConnection& client = world.client();
  size_t base = IslandCount(world.server());

  // Two child LOUDs' players feed one mixer in the shared root: a single
  // wire-connected tree, so a single island.
  ResourceId root = client.CreateLoud(kNoResource, {});
  ResourceId child_a = client.CreateLoud(root, {});
  ResourceId child_b = client.CreateLoud(root, {});
  ResourceId player_a = client.CreateDevice(child_a, DeviceClass::kPlayer, {});
  ResourceId player_b = client.CreateDevice(child_b, DeviceClass::kPlayer, {});
  ResourceId mixer = client.CreateDevice(root, DeviceClass::kMixer, {});
  ResourceId output = client.CreateDevice(root, DeviceClass::kOutput, {});
  client.CreateWire(player_a, 0, mixer, 0);
  client.CreateWire(player_b, 0, mixer, 1);
  client.CreateWire(mixer, 0, output, 0);
  client.MapLoud(root);
  ASSERT_TRUE(client.Sync().ok());

  EXPECT_EQ(IslandCount(world.server()), base + 1);
  int island = IslandOf(world.server(), root);
  ASSERT_GE(island, 0);
  {
    MutexLock lock(&world.server().mutex());
    const EngineIsland& got =
        world.server().state().PartitionIslands()[static_cast<size_t>(island)];
    EXPECT_EQ(got.louds.size(), 1u);    // islands list root LOUDs only
    EXPECT_EQ(got.devices.size(), 4u);  // both players + mixer + output
  }
}

TEST(IslandPartitionTest, SharedSoundMergesIslands) {
  World world(BoardConfig{}, ServerOptions{});
  AudioToolkit& toolkit = world.toolkit();
  AudioConnection& client = world.client();

  auto c1 = toolkit.BuildPlaybackChain();
  auto c2 = toolkit.BuildPlaybackChain();
  auto c3 = toolkit.BuildPlaybackChain();
  ResourceId shared = toolkit.UploadSound(ChainTone(1), {Encoding::kPcm16, 8000});
  ResourceId solo = toolkit.UploadSound(ChainTone(2), {Encoding::kPcm16, 8000});
  // c1 and c2 both reference `shared` from their queues; c3 does not.
  client.Enqueue(c1.loud, {PlayCommand(c1.player, shared, 1)});
  client.Enqueue(c2.loud, {PlayCommand(c2.player, shared, 1)});
  client.Enqueue(c3.loud, {PlayCommand(c3.player, solo, 1)});
  ASSERT_TRUE(client.Sync().ok());

  int i1 = IslandOf(world.server(), c1.loud);
  int i2 = IslandOf(world.server(), c2.loud);
  int i3 = IslandOf(world.server(), c3.loud);
  ASSERT_GE(i1, 0);
  ASSERT_GE(i3, 0);
  EXPECT_EQ(i1, i2);
  EXPECT_NE(i1, i3);
}

TEST(IslandPartitionTest, SharedMicrophoneMergesIslands) {
  World world(BoardConfig{}, ServerOptions{});  // one microphone

  // Both record chains bind the single microphone, whose capture ring is
  // read destructively — they must tick in one island.
  auto r1 = world.toolkit().BuildRecordChain();
  auto r2 = world.toolkit().BuildRecordChain();
  auto playback = world.toolkit().BuildPlaybackChain();
  ASSERT_TRUE(world.client().Sync().ok());

  int i1 = IslandOf(world.server(), r1.loud);
  int i2 = IslandOf(world.server(), r2.loud);
  int ip = IslandOf(world.server(), playback.loud);
  ASSERT_GE(i1, 0);
  ASSERT_GE(ip, 0);
  EXPECT_EQ(i1, i2);
  EXPECT_NE(i1, ip);
}

TEST(IslandPartitionTest, TelephonesShareTheExchangeIsland) {
  BoardConfig config;
  config.phone_lines = 2;
  World world(config, ServerOptions{});
  AudioConnection& client = world.client();

  ResourceId loud_a = client.CreateLoud(kNoResource, {});
  client.CreateDevice(loud_a, DeviceClass::kTelephone, {});
  client.MapLoud(loud_a);
  ResourceId loud_b = client.CreateLoud(kNoResource, {});
  client.CreateDevice(loud_b, DeviceClass::kTelephone, {});
  client.MapLoud(loud_b);
  ASSERT_TRUE(client.Sync().ok());

  // Distinct phone lines, but Dial/Answer/SendDTMF mutate the shared
  // exchange: one island.
  int ia = IslandOf(world.server(), loud_a);
  int ib = IslandOf(world.server(), loud_b);
  ASSERT_GE(ia, 0);
  EXPECT_EQ(ia, ib);
}

// -- Serial/parallel determinism ---------------------------------------------

// A 64-player workload: 48 independent chains split across both speakers
// (some sharing sounds), plus 8 shared-mixer groups of two players each.
void BuildWorkload(World& world) {
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();
  const char* positions[2] = {"left", "right"};

  ResourceId prev_sound = kNoResource;
  for (int i = 0; i < 48; ++i) {
    ResourceId sound = (i % 16 == 15)
                           ? prev_sound
                           : toolkit.UploadSound(ChainTone(i), {Encoding::kPcm16, 8000});
    prev_sound = sound;
    AttrList attrs;
    attrs.SetString(AttrTag::kPosition, positions[i % 2]);
    auto chain = toolkit.BuildPlaybackChain(attrs);
    client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
    client.StartQueue(chain.loud);
  }

  for (int g = 0; g < 8; ++g) {
    ResourceId root = client.CreateLoud(kNoResource, {});
    ResourceId child_a = client.CreateLoud(root, {});
    ResourceId child_b = client.CreateLoud(root, {});
    ResourceId player_a = client.CreateDevice(child_a, DeviceClass::kPlayer, {});
    ResourceId player_b = client.CreateDevice(child_b, DeviceClass::kPlayer, {});
    ResourceId mixer = client.CreateDevice(root, DeviceClass::kMixer, {});
    AttrList attrs;
    attrs.SetString(AttrTag::kPosition, positions[g % 2]);
    ResourceId output = client.CreateDevice(root, DeviceClass::kOutput, attrs);
    client.CreateWire(player_a, 0, mixer, 0);
    client.CreateWire(player_b, 0, mixer, 1);
    client.CreateWire(mixer, 0, output, 0);
    client.MapLoud(root);
    ResourceId sound_a = toolkit.UploadSound(ChainTone(100 + 2 * g), {Encoding::kPcm16, 8000});
    ResourceId sound_b = toolkit.UploadSound(ChainTone(101 + 2 * g), {Encoding::kPcm16, 8000});
    client.Enqueue(root, {PlayCommand(player_a, sound_a, 1), PlayCommand(player_b, sound_b, 2)});
    client.StartQueue(root);
  }
  ASSERT_TRUE(client.Sync().ok());
}

TEST(ParallelDeterminismTest, ParallelOutputBitIdenticalToSerial) {
  BoardConfig config;
  config.speakers = 2;
  ServerOptions serial_opts;  // engine_threads = 1: the serial engine
  ServerOptions parallel_opts;
  parallel_opts.engine_threads = 4;

  World serial(config, serial_opts);
  World parallel(config, parallel_opts);
  for (World* world : {&serial, &parallel}) {
    for (SpeakerUnit* speaker : world->board().speakers()) {
      speaker->set_capture_output(true);
    }
    BuildWorkload(*world);
  }

  // The workload must genuinely fan out (many islands, both outputs).
  EXPECT_GT(IslandCount(parallel.server()), 8u);

  // 70 periods = 1.4 s: covers the full 1 s sounds plus their completions
  // (queue advance + deferred event flush) under the parallel engine.
  const int64_t kFrames = 160 * 70;
  serial.server().StepFrames(kFrames);
  parallel.server().StepFrames(kFrames);

  for (int s = 0; s < 2; ++s) {
    const std::vector<Sample>& want = serial.board().speakers()[static_cast<size_t>(s)]->played();
    const std::vector<Sample>& got =
        parallel.board().speakers()[static_cast<size_t>(s)]->played();
    EXPECT_GT(Rms(want), 0.0) << "speaker " << s << " silent — workload not audible";
    ASSERT_EQ(want.size(), got.size()) << "speaker " << s;
    EXPECT_TRUE(want == got) << "speaker " << s << ": parallel output diverged from serial";
  }
}

// Same equivalence for a number of workers that exceeds the island count
// (workers idle) and for engine_threads=2 (islands queue behind workers).
TEST(ParallelDeterminismTest, WorkerCountDoesNotAffectOutput) {
  BoardConfig config;
  config.speakers = 2;
  std::vector<std::vector<Sample>> captures[2];

  for (int threads : {1, 2, 8}) {
    ServerOptions options;
    options.engine_threads = threads;
    World world(config, options);
    for (SpeakerUnit* speaker : world.board().speakers()) {
      speaker->set_capture_output(true);
    }
    BuildWorkload(world);
    world.server().StepFrames(160 * 30);
    for (int s = 0; s < 2; ++s) {
      captures[s].push_back(world.board().speakers()[static_cast<size_t>(s)]->played());
    }
  }

  for (int s = 0; s < 2; ++s) {
    ASSERT_EQ(captures[s].size(), 3u);
    EXPECT_TRUE(captures[s][0] == captures[s][1]) << "threads=2 diverged, speaker " << s;
    EXPECT_TRUE(captures[s][0] == captures[s][2]) << "threads=8 diverged, speaker " << s;
  }
}

}  // namespace
}  // namespace aud
