// Failure-injection and malformed-input robustness: resources destroyed
// mid-use, abusive clients, truncated request payloads, id-range
// violations. The server must degrade with protocol errors, never crash
// or corrupt other clients.

#include <gtest/gtest.h>

#include "tests/server_fixture.h"

namespace aud {
namespace {

class RobustnessTest : public ServerFixture {};

TEST_F(RobustnessTest, SoundDestroyedMidPlayAbortsCleanly) {
  auto tone = TestTone(2000);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(100);

  client_->DestroySound(sound);
  Flush();
  // The play command terminates (the sound vanished under it).
  auto done = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kCommandDone; }, 10000);
  ASSERT_TRUE(done.has_value());
  // The server remains healthy.
  ExpectNoErrors();
}

TEST_F(RobustnessTest, WireDestroyedMidPlayJustSilences) {
  board_->speakers()[0]->set_capture_output(true);
  auto tone = TestTone(1000);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  auto wires = client_->QueryWires(chain.player);
  ASSERT_TRUE(wires.ok());
  ResourceId wire = wires.value().wires[0].id;

  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(200);
  client_->DestroyWire(wire);
  Flush();
  // Playback still completes (producing into no wires).
  EXPECT_TRUE(toolkit_->WaitCommandDone(1, 20000));
  ExpectNoErrors();
}

TEST_F(RobustnessTest, DestroyLoudMidRecordingStopsEverything) {
  auto chain = toolkit_->BuildRecordChain();
  ResourceId sound = client_->CreateSound(kTelephoneFormat);
  board_->microphones()[0]->set_source([](std::span<Sample> block) {
    for (Sample& s : block) {
      s = 5000;
    }
  });
  client_->Enqueue(chain.loud,
                   {RecordCommand(chain.recorder, sound, kTerminateOnStop, 60000, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(200);
  client_->DestroyLoud(chain.loud);
  Flush();
  StepMs(200);
  // Gone from the registry; the sound still exists (client-owned).
  EXPECT_FALSE(client_->QueryLoud(chain.loud).ok());
  EXPECT_TRUE(client_->QuerySound(sound).ok());
  AsyncError e;
  while (client_->NextError(&e)) {
  }
}

TEST_F(RobustnessTest, DoubleMapAndDoubleUnmapAreIdempotent) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->MapLoud(loud);
  client_->MapLoud(loud);
  client_->UnmapLoud(loud);
  client_->UnmapLoud(loud);
  ExpectNoErrors();
  auto stack = client_->QueryActiveStack();
  ASSERT_TRUE(stack.ok());
  EXPECT_TRUE(stack.value().entries.empty());
}

TEST_F(RobustnessTest, IdOutsideClientBlockRejected) {
  CreateLoudReq req;
  req.id = 5;  // far below the client's block
  ByteWriter w;
  req.Encode(&w);
  client_->SendRequest(Opcode::kCreateLoud, w.bytes());
  ExpectError(ErrorCode::kBadIdChoice);

  req.id = kServerIdBase + 10;  // inside the server-reserved range
  ByteWriter w2;
  req.Encode(&w2);
  client_->SendRequest(Opcode::kCreateLoud, w2.bytes());
  ExpectError(ErrorCode::kBadIdChoice);
}

TEST_F(RobustnessTest, DuplicateIdRejected) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  Flush();
  CreateSoundReq req;
  req.id = loud;  // collides with the LOUD
  req.format = kTelephoneFormat;
  ByteWriter w;
  req.Encode(&w);
  client_->SendRequest(Opcode::kCreateSound, w.bytes());
  ExpectError(ErrorCode::kBadIdChoice);
}

TEST_F(RobustnessTest, TruncatedPayloadsYieldErrorsNotCrashes) {
  // Send every prefix of a valid CreateVirtualDevice request as the
  // payload; the server must answer each with an error (or accept a
  // trivially-valid prefix) and stay alive.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  Flush();
  CreateVirtualDeviceReq req;
  req.id = client_->AllocId();
  req.loud = loud;
  req.device_class = DeviceClass::kMixer;
  req.attrs.SetString(AttrTag::kName, "m");
  ByteWriter w;
  req.Encode(&w);

  for (size_t len = 0; len < w.bytes().size(); ++len) {
    client_->SendRequest(Opcode::kCreateVirtualDevice,
                         std::span<const uint8_t>(w.bytes()).first(len));
  }
  ASSERT_TRUE(client_->Sync().ok());
  AsyncError error;
  while (client_->NextError(&error)) {
  }
  // Server is still fully functional.
  ResourceId after = client_->CreateLoud(kNoResource, {});
  Flush();
  EXPECT_TRUE(client_->QueryLoud(after).ok());
}

TEST_F(RobustnessTest, HostileOpcodeFloodSurvives) {
  for (uint16_t code = 0; code < 120; ++code) {
    client_->SendRequest(static_cast<Opcode>(code), {});
  }
  ASSERT_TRUE(client_->Sync().ok());
  AsyncError error;
  int errors = 0;
  while (client_->NextError(&error)) {
    ++errors;
  }
  EXPECT_GT(errors, 0);
  ExpectNoErrors();  // drained; still alive
}

TEST_F(RobustnessTest, OversizedSoundWriteRejected) {
  ResourceId sound = client_->CreateSound(kTelephoneFormat);
  WriteSoundDataReq req;
  req.id = sound;
  req.offset = 63ull << 20;
  req.data.assign(2 << 20, 0);  // pushes past the 64 MiB cap
  ByteWriter w;
  req.Encode(&w);
  client_->SendRequest(Opcode::kWriteSoundData, w.bytes());
  ExpectError(ErrorCode::kAlloc);
}

TEST_F(RobustnessTest, ForeignResourceOperationsRejected) {
  auto client2 = Connect("intruder");
  ASSERT_NE(client2, nullptr);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  Flush();

  // Another client cannot destroy, map or enqueue on our LOUD.
  client2->DestroyLoud(loud);
  client2->MapLoud(loud);
  client2->StartQueue(loud);
  ASSERT_TRUE(client2->Sync().ok());
  AsyncError error;
  int errors = 0;
  while (client2->NextError(&error)) {
    EXPECT_EQ(error.error.code, ErrorCode::kBadResource);
    ++errors;
  }
  EXPECT_EQ(errors, 3);
  // Ours is untouched.
  EXPECT_TRUE(client_->QueryLoud(loud).ok());
}

TEST_F(RobustnessTest, EventMaskDeselectionStopsDelivery) {
  auto tone = TestTone(100);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  // Deselect everything.
  client_->SelectEvents(chain.loud, 0);
  Flush();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(500);
  EventMessage event;
  while (client_->PollEvent(&event)) {
    EXPECT_NE(event.type, EventType::kCommandDone) << "event delivered despite mask 0";
    EXPECT_NE(event.type, EventType::kQueueStarted);
  }
}

TEST_F(RobustnessTest, SelfWireIsHandled) {
  // Wiring a DSP's own output to its own input (a loop) is accepted
  // structurally but must not hang or explode the engine.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId dsp = client_->CreateDevice(loud, DeviceClass::kDsp, {});
  client_->CreateWire(dsp, 0, dsp, 0);
  client_->MapLoud(loud);
  Flush();
  StepMs(500);  // engine survives the loop
  ExpectNoErrors();
}

TEST_F(RobustnessTest, ZeroLengthSoundPlaysInstantly) {
  ResourceId sound = client_->CreateSound(kTelephoneFormat);  // empty
  auto chain = toolkit_->BuildPlaybackChain();
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  EXPECT_TRUE(toolkit_->WaitCommandDone(1, 5000));
}

TEST_F(RobustnessTest, PauseOfIdleQueueIsBadState) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->PauseQueue(loud);
  ExpectError(ErrorCode::kBadState);
  client_->ResumeQueue(loud);
  ExpectError(ErrorCode::kBadState);
}

}  // namespace
}  // namespace aud
