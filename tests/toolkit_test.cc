// Toolkit tests: chain builders, dialogues, tone menus, the Soundviewer
// model and the audio-manager client.

#include <gtest/gtest.h>

#include "src/toolkit/audio_manager.h"
#include "src/toolkit/dialogue.h"
#include "src/toolkit/soundviewer.h"
#include "src/toolkit/tone_menu.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class ToolkitTest : public ServerFixture {};

TEST_F(ToolkitTest, UploadDownloadRoundTrip) {
  auto tone = TestTone(100);
  ResourceId sound = toolkit_->UploadSound(tone, {Encoding::kPcm16, 8000});
  auto back = toolkit_->DownloadSound(sound);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), tone);
}

TEST_F(ToolkitTest, PlaybackChainIsWiredAndMapped) {
  auto chain = toolkit_->BuildPlaybackChain();
  ExpectNoErrors();
  auto wires = client_->QueryWires(chain.player);
  ASSERT_TRUE(wires.ok());
  ASSERT_EQ(wires.value().wires.size(), 1u);
  EXPECT_EQ(wires.value().wires[0].dst_device, chain.output);
  EXPECT_EQ(client_->QueryLoud(chain.loud).value().active, 1);
}

TEST_F(ToolkitTest, RecordChainCapturesMicrophone) {
  auto chain = toolkit_->BuildRecordChain();
  ResourceId sound = client_->CreateSound(kTelephoneFormat);
  board_->microphones()[0]->AddPendingAudio(TestTone(300));

  client_->Enqueue(chain.loud,
                   {RecordCommand(chain.recorder, sound, kTerminateOnStop, 300, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));

  auto recorded = toolkit_->DownloadSound(sound);
  ASSERT_TRUE(recorded.ok());
  size_t audible = 0;
  for (Sample s : recorded.value()) {
    if (std::abs(s) > 1000) {
      ++audible;
    }
  }
  EXPECT_GT(audible, 1500u);
}

TEST_F(ToolkitTest, PromptAndRecordDialogue) {
  // An answering-machine-style dialogue against the microphone/speaker.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  ResourceId input = client_->CreateDevice(loud, DeviceClass::kInput, {});
  ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, {});
  client_->CreateWire(player, 0, output, 0);
  client_->CreateWire(input, 0, recorder, 0);
  client_->SelectEvents(loud, kAllEvents);
  client_->MapLoud(loud);

  ResourceId prompt = toolkit_->UploadSound(TestTone(200), kTelephoneFormat);
  // The "user" answers 500 ms in, speaks 800 ms, then goes silent.
  std::vector<Sample> user(4000, 0);
  auto speech = TestTone(800, 300.0);
  user.insert(user.end(), speech.begin(), speech.end());
  board_->microphones()[0]->AddPendingAudio(user);

  AudioDialogue dialogue(toolkit_.get());
  auto result = dialogue.PromptAndRecord(loud, player, recorder, prompt, 10000, 60000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reason, RecordStopReason::kPauseDetected);
  EXPECT_GT(result->samples, 8000u);  // prompt-wait + speech before the pause
}

TEST_F(ToolkitTest, SoundviewerTracksSyncMarks) {
  Soundviewer viewer(8000, {.width_chars = 20, .tick_seconds = 1.0});
  SyncMarkArgs mark;
  mark.total_samples = 16000;
  mark.position_samples = 0;
  viewer.OnSyncMark(mark);
  EXPECT_EQ(viewer.Render(), "[----------|---------]");

  mark.position_samples = 8000;
  EXPECT_TRUE(viewer.OnSyncMark(mark));
  std::string half = viewer.Render();
  EXPECT_EQ(half.substr(0, 11), "[##########");
  EXPECT_DOUBLE_EQ(viewer.fraction(), 0.5);

  // Same cell: no visual change.
  mark.position_samples = 8100;
  EXPECT_FALSE(viewer.OnSyncMark(mark));
}

TEST_F(ToolkitTest, SoundviewerSelectionRendering) {
  Soundviewer viewer(8000, {.width_chars = 10, .tick_seconds = 100.0});
  SyncMarkArgs mark;
  mark.total_samples = 10000;
  mark.position_samples = 5000;
  viewer.OnSyncMark(mark);
  viewer.SetSelection(6000, 8000);
  std::string bar = viewer.Render();
  EXPECT_NE(bar.find('='), std::string::npos);  // selection in unplayed region
  viewer.ClearSelection();
  EXPECT_EQ(viewer.Render().find('='), std::string::npos);
}

TEST_F(ToolkitTest, SoundviewerDrivenByRealPlayback) {
  // End-to-end: play a sound with sync marks and drive the viewer from the
  // event stream (the Figure 6-1 loop).
  auto tone = TestTone(1000);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->SetSyncMarks(chain.loud, 100);

  Soundviewer viewer(8000);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();

  int repaints = 0;
  toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kSyncMark) {
          if (viewer.OnSyncMark(SyncMarkArgs::Decode(e.args))) {
            ++repaints;
          }
          return false;
        }
        return e.type == EventType::kCommandDone;
      },
      20000);
  EXPECT_GE(repaints, 5);
  EXPECT_GT(viewer.fraction(), 0.8);
}

TEST_F(ToolkitTest, ToneMenuCollectsDigitsWithBargeIn) {
  // A caller dials in; the menu plays a prompt; the caller barges in with
  // digits before the prompt ends.
  auto chain = toolkit_->BuildAnsweringChain();
  client_->MapLoud(chain.loud);
  Flush();

  FarEndParty* caller = board_->AddFarEnd("555-6666");
  caller->DialAndWait("555-0100").WaitMs(300).SendDtmf("2").WaitMs(60000);

  // Answer only once the line is actually ringing.
  auto ring = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 10000);
  ASSERT_TRUE(ring.has_value());
  client_->Enqueue(chain.loud, {AnswerCommand(chain.telephone, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  auto connected = toolkit_->WaitFor(
      [](const EventMessage& e) {
        return e.type == EventType::kTelephoneAnswered ||
               (e.type == EventType::kCallProgress &&
                CallProgressArgs::Decode(e.args).state == CallState::kConnected);
      },
      10000);
  ASSERT_TRUE(connected.has_value());

  ResourceId prompt =
      toolkit_->UploadSound(TestTone(3000, 350.0), kTelephoneFormat);  // long prompt
  ToneMenu menu(toolkit_.get(), chain.loud, chain.telephone, chain.player);
  auto selection = menu.Run(prompt, {.max_digits = 1, .digit_timeout_ms = 20000});
  ASSERT_TRUE(selection.has_value());
  EXPECT_EQ(*selection, "2");
}

TEST_F(ToolkitTest, ToneMenuTimesOutWithoutDigits) {
  auto chain = toolkit_->BuildAnsweringChain();
  client_->MapLoud(chain.loud);
  Flush();
  ToneMenu menu(toolkit_.get(), chain.loud, chain.telephone, chain.player);
  auto selection = menu.Run(kNoResource, {.max_digits = 1, .digit_timeout_ms = 300});
  EXPECT_FALSE(selection.has_value());
}

TEST_F(ToolkitTest, AudioManagerFocusPolicyLowersOthers) {
  auto manager_conn = Connect("manager");
  ASSERT_NE(manager_conn, nullptr);
  AudioManager manager(manager_conn.get(), AudioManager::Policy::kFocusFollowsMap);
  ASSERT_TRUE(manager_conn->Sync().ok());

  // Two apps map LOUDs wanting the exclusive phone line.
  ResourceId app1 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(app1, DeviceClass::kTelephone, {});
  ResourceId app2 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(app2, DeviceClass::kTelephone, {});

  client_->MapLoud(app1);
  Flush();
  for (int i = 0; i < 100 && manager.Pump() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(manager_conn->Sync().ok());
  EXPECT_EQ(client_->QueryLoud(app1).value().active, 1);

  client_->MapLoud(app2);
  Flush();
  for (int i = 0; i < 100 && manager.Pump() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(manager_conn->Sync().ok());
  // Focus follows map: app2 now holds the line.
  EXPECT_EQ(client_->QueryLoud(app2).value().active, 1);
  EXPECT_EQ(client_->QueryLoud(app1).value().active, 0);
  EXPECT_EQ(manager.managed().size(), 2u);
}

TEST_F(ToolkitTest, AudioManagerDenyPolicyBlocksMapping) {
  auto manager_conn = Connect("manager");
  AudioManager manager(manager_conn.get(), AudioManager::Policy::kDenyAll);
  ASSERT_TRUE(manager_conn->Sync().ok());

  ResourceId app = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(app, DeviceClass::kOutput, {});
  client_->MapLoud(app);
  Flush();
  for (int i = 0; i < 50; ++i) {
    manager.Pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(client_->QueryLoud(app).value().mapped, 0);
}

}  // namespace
}  // namespace aud
