// Telephone device tests, culminating in the paper's answering machine
// (section 5.9, figures 5-1..5-4): monitor the device LOUD for rings, map
// on ring, answer-play-beep-record in one queue, handle hangup.

#include <gtest/gtest.h>

#include "src/dsp/dtmf.h"
#include "src/dsp/encoding.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class TelephoneTest : public ServerFixture {
 protected:
  // Builds a minimal phone LOUD: telephone only.
  struct PhoneChain {
    ResourceId loud;
    ResourceId telephone;
  };
  PhoneChain BuildPhone() {
    PhoneChain chain;
    chain.loud = client_->CreateLoud(kNoResource, {});
    chain.telephone = client_->CreateDevice(chain.loud, DeviceClass::kTelephone, {});
    client_->SelectEvents(chain.loud, kAllEvents);
    client_->MapLoud(chain.loud);
    return chain;
  }

  // The device-LOUD id of phone line 0.
  ResourceId PhoneDeviceId() {
    MutexLock lock(&server_->mutex());
    return server_->state().IdForPhysical(board_->phone_lines()[0]);
  }
};

TEST_F(TelephoneTest, OutboundCallConnects) {
  FarEndParty* callee = board_->AddFarEnd("555-9999", "Alice");
  callee->AnswerAfterRings(1);

  auto chain = BuildPhone();
  client_->Enqueue(chain.loud, {DialCommand(chain.telephone, "555-9999", 42)});
  client_->StartQueue(chain.loud);
  Flush();

  // Dial completes when the far end answers.
  bool connected = false;
  auto event = toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kTelephoneDialDone) {
          connected = CallProgressArgs::Decode(e.args).state == CallState::kConnected;
          return true;
        }
        return false;
      },
      10000);
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(connected);
  ExpectNoErrors();
}

TEST_F(TelephoneTest, DialBusyNumberReportsBusy) {
  // Two far ends already talking to each other.
  FarEndParty* a = board_->AddFarEnd("555-0001");
  FarEndParty* b = board_->AddFarEnd("555-0002");
  b->AnswerAfterRings(1);
  a->DialAndWait("555-0002").WaitMs(60000);
  StepMs(8000);  // let their call set up

  auto chain = BuildPhone();
  client_->Enqueue(chain.loud, {DialCommand(chain.telephone, "555-0002", 7)});
  client_->StartQueue(chain.loud);
  Flush();

  CallState final_state = CallState::kIdle;
  auto event = toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kTelephoneDialDone) {
          final_state = CallProgressArgs::Decode(e.args).state;
          return true;
        }
        return false;
      },
      10000);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(final_state, CallState::kBusy);
}

TEST_F(TelephoneTest, DialUnknownNumberFails) {
  auto chain = BuildPhone();
  client_->Enqueue(chain.loud, {DialCommand(chain.telephone, "000-0000", 7)});
  client_->StartQueue(chain.loud);
  Flush();

  CallState final_state = CallState::kIdle;
  auto event = toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kTelephoneDialDone) {
          final_state = CallProgressArgs::Decode(e.args).state;
          return true;
        }
        return false;
      },
      10000);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(final_state, CallState::kFailed);
}

TEST_F(TelephoneTest, IncomingRingCarriesCallerId) {
  PhoneChain chain = BuildPhone();  // the mapped LOUD receives ring events
  (void)chain;
  Flush();

  FarEndParty* caller = board_->AddFarEnd("555-7777", "Bob Smith");
  caller->DialAndWait("555-0100").WaitMs(60000);

  std::string caller_id;
  auto event = toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kTelephoneRing) {
          caller_id = TelephoneRingArgs::Decode(e.args).caller_id;
          return true;
        }
        return false;
      },
      10000);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(caller_id, "Bob Smith");
}

TEST_F(TelephoneTest, DeviceLoudMonitoringSeesRingsWhileUnmapped) {
  // The answering-machine trick (section 5.9 footnote 6): the LOUD is
  // unmapped, so the application watches the *device LOUD* telephone.
  client_->SelectEvents(PhoneDeviceId(), kTelephoneEvents);
  Flush();

  FarEndParty* caller = board_->AddFarEnd("555-7777", "Carol");
  caller->DialAndWait("555-0100").WaitMs(60000);

  auto event = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 10000);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(TelephoneRingArgs::Decode(event->args).caller_id, "Carol");
}

TEST_F(TelephoneTest, DtmfFromFarEndIsDelivered) {
  FarEndParty* callee = board_->AddFarEnd("555-8888");
  callee->AnswerAfterRings(1).WaitMs(500).SendDtmf("42#").WaitMs(60000);

  auto chain = BuildPhone();
  client_->Enqueue(chain.loud, {DialCommand(chain.telephone, "555-8888", 1)});
  client_->StartQueue(chain.loud);
  Flush();

  std::string digits;
  toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kDtmfReceived) {
          digits.push_back(DtmfReceivedArgs::Decode(e.args).digit);
          return digits.size() >= 3;
        }
        return false;
      },
      15000);
  EXPECT_EQ(digits, "42#");
}

TEST_F(TelephoneTest, AnsweringMachineEndToEnd) {
  // Build the answering machine of figure 5-3 via the toolkit.
  auto chain = toolkit_->BuildAnsweringChain();

  // Greeting: 600 ms of 350 Hz tone stands in for "please leave a message".
  auto greeting_pcm = TestTone(600, 350.0);
  ResourceId greeting = toolkit_->UploadSound(greeting_pcm, kTelephoneFormat);
  ResourceId beep = client_->LoadCatalogueSound("beep");
  ResourceId message = client_->CreateSound(kTelephoneFormat);

  // Preload the queue (figure 5-4): answer, play greeting, play beep,
  // record until pause or hangup.
  client_->Enqueue(chain.loud,
                   {AnswerCommand(chain.telephone, 1),
                    PlayCommand(chain.player, greeting, 2),
                    PlayCommand(chain.player, beep, 3),
                    RecordCommand(chain.recorder, message,
                                  kTerminateOnPause | kTerminateOnHangup, 20000, 4)});

  // Monitor the device LOUD for rings while unmapped.
  client_->SelectEvents(PhoneDeviceId(), kTelephoneEvents);
  ExpectNoErrors();

  // A caller: waits through the greeting, hears the beep, speaks ~1.2 s,
  // then hangs up.
  auto speech = TestTone(1200, 250.0);
  FarEndParty* caller = board_->AddFarEnd("555-7777", "Dave");
  caller->DialAndWait("555-0100")
      .WaitForTone(20000)  // greeting+beep heard (tone then silence)
      .Speak(speech)
      .WaitMs(2500)  // silence so pause detection fires
      .HangUp();

  // Ring arrives -> map the LOUD and start the queue.
  auto ring = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 10000);
  ASSERT_TRUE(ring.has_value());
  client_->MapLoud(chain.loud);
  client_->StartQueue(chain.loud);
  Flush();

  // Wait for the recording to stop.
  RecorderStoppedArgs stopped;
  auto event = toolkit_->WaitFor(
      [&](const EventMessage& e) {
        if (e.type == EventType::kRecorderStopped) {
          stopped = RecorderStoppedArgs::Decode(e.args);
          return true;
        }
        return false;
      },
      60000);
  ASSERT_TRUE(event.has_value()) << "recording never terminated";

  // The message sound must contain the caller's speech (≈1.2 s of tone).
  auto recorded = toolkit_->DownloadSound(message);
  ASSERT_TRUE(recorded.ok());
  size_t audible = 0;
  for (Sample s : recorded.value()) {
    if (std::abs(s) > 1000) {
      ++audible;
    }
  }
  EXPECT_GT(audible, 6000u) << "caller speech missing from recording";

  // The caller heard the greeting and the beep.
  size_t heard_audible = 0;
  for (Sample s : caller->heard()) {
    if (std::abs(s) > 1000) {
      ++heard_audible;
    }
  }
  EXPECT_GT(heard_audible, 3000u) << "greeting/beep never reached the caller";
  ExpectNoErrors();
}

TEST_F(TelephoneTest, CallerHangupDuringGreetingStopsQueue) {
  auto chain = toolkit_->BuildAnsweringChain();
  auto greeting_pcm = TestTone(3000, 350.0);
  ResourceId greeting = toolkit_->UploadSound(greeting_pcm, kTelephoneFormat);
  ResourceId message = client_->CreateSound(kTelephoneFormat);
  client_->Enqueue(chain.loud,
                   {AnswerCommand(chain.telephone, 1), PlayCommand(chain.player, greeting, 2),
                    RecordCommand(chain.recorder, message, kTerminateOnHangup, 10000, 3)});
  client_->SelectEvents(PhoneDeviceId(), kTelephoneEvents);
  Flush();

  FarEndParty* caller = board_->AddFarEnd("555-7777");
  caller->DialAndWait("555-0100").WaitMs(500).HangUp();

  auto ring = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 10000);
  ASSERT_TRUE(ring.has_value());
  client_->MapLoud(chain.loud);
  client_->StartQueue(chain.loud);
  Flush();

  // Hangup surfaces as CallProgress; the application stops the queue.
  auto hangup = toolkit_->WaitFor(
      [](const EventMessage& e) {
        return e.type == EventType::kCallProgress &&
               CallProgressArgs::Decode(e.args).state == CallState::kHungUp;
      },
      20000);
  ASSERT_TRUE(hangup.has_value());
  client_->StopQueue(chain.loud);
  client_->UnmapLoud(chain.loud);
  Flush();

  auto queue_state = client_->QueryQueue(chain.loud);
  ASSERT_TRUE(queue_state.ok());
  EXPECT_EQ(queue_state.value().state, QueueState::kStopped);
  ExpectNoErrors();
}

TEST_F(TelephoneTest, SendDtmfIsAudibleInBand) {
  FarEndParty* callee = board_->AddFarEnd("555-8888");
  callee->AnswerAfterRings(1).RecordMs(3000).WaitMs(60000);

  auto chain = BuildPhone();
  client_->Enqueue(chain.loud, {DialCommand(chain.telephone, "555-8888", 1),
                                SendDtmfCommand(chain.telephone, "5", 2)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(2, 15000));
  StepMs(3500);

  // Decode the far end's recording: the '5' must be detectable.
  DtmfDetector detector(board_->sample_rate_hz());
  detector.Process(callee->recorded());
  EXPECT_NE(detector.TakeDigits().find('5'), std::string::npos);
}

}  // namespace
}  // namespace aud
