// Golden-value tests for the dispatched DSP kernels: every variant
// (scalar table-driven, SSE2/NEON when compiled in) must be bit-identical
// to the per-sample reference functions, across the full 16-bit input
// domain for companding and over adversarial blocks (saturation extremes,
// odd lengths, unaligned tails) for the mix kernels. This is what lets the
// vectorized data plane keep PR 1's serial-vs-parallel determinism.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "src/dsp/alaw.h"
#include "src/dsp/encoding.h"
#include "src/dsp/gain.h"
#include "src/dsp/kernels.h"
#include "src/dsp/mixer_kernel.h"
#include "src/dsp/mulaw.h"

namespace aud {
namespace {

// All kernel sets compiled into this binary.
std::vector<const KernelOps*> AllVariants() {
  std::vector<const KernelOps*> variants = {&ScalarKernels()};
  if (SimdKernels() != nullptr) {
    variants.push_back(SimdKernels());
  }
  variants.push_back(&Kernels());
  return variants;
}

TEST(KernelGolden, MulawEncodeExhaustive) {
  for (const KernelOps* ops : AllVariants()) {
    std::vector<Sample> in(65536);
    for (int v = 0; v < 65536; ++v) {
      in[static_cast<size_t>(v)] = static_cast<Sample>(v - 32768);
    }
    std::vector<uint8_t> out(in.size());
    ops->mulaw_encode(out.data(), in.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(out[i], MulawEncode(in[i]))
          << ops->name << " input " << in[i];
    }
  }
}

TEST(KernelGolden, AlawEncodeExhaustive) {
  for (const KernelOps* ops : AllVariants()) {
    std::vector<Sample> in(65536);
    for (int v = 0; v < 65536; ++v) {
      in[static_cast<size_t>(v)] = static_cast<Sample>(v - 32768);
    }
    std::vector<uint8_t> out(in.size());
    ops->alaw_encode(out.data(), in.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(out[i], AlawEncode(in[i])) << ops->name << " input " << in[i];
    }
  }
}

TEST(KernelGolden, CompandingDecodeExhaustive) {
  for (const KernelOps* ops : AllVariants()) {
    std::vector<uint8_t> in(256);
    for (int v = 0; v < 256; ++v) {
      in[static_cast<size_t>(v)] = static_cast<uint8_t>(v);
    }
    std::vector<Sample> mu(256), a(256);
    ops->mulaw_decode(mu.data(), in.data(), in.size());
    ops->alaw_decode(a.data(), in.data(), in.size());
    for (int v = 0; v < 256; ++v) {
      ASSERT_EQ(mu[static_cast<size_t>(v)], MulawDecode(static_cast<uint8_t>(v)))
          << ops->name;
      ASSERT_EQ(a[static_cast<size_t>(v)], AlawDecode(static_cast<uint8_t>(v)))
          << ops->name;
    }
  }
}

// Blocks that hit saturation rails, sign boundaries, and odd tail lengths.
std::vector<std::vector<Sample>> AdversarialBlocks() {
  std::vector<std::vector<Sample>> blocks;
  blocks.push_back({});
  blocks.push_back({32767});
  blocks.push_back({-32768, 32767, -1, 0, 1});
  std::mt19937 rng(12345);
  std::uniform_int_distribution<int> dist(-32768, 32767);
  for (size_t len : {7u, 8u, 15u, 16u, 17u, 160u, 1023u}) {
    std::vector<Sample> block(len);
    for (Sample& s : block) {
      s = static_cast<Sample>(dist(rng));
    }
    // Salt in rail values so accumulate/resolve saturation paths trigger.
    if (len >= 4) {
      block[0] = 32767;
      block[1] = -32768;
      block[len / 2] = 32767;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

const int32_t kGains[] = {0, 1, 37, 5000, 9999, kUnityGain, 10001, 15000, 20000};

TEST(KernelGolden, MixAccumulateMatchesScalar) {
  const KernelOps& ref = ScalarKernels();
  for (const KernelOps* ops : AllVariants()) {
    for (const auto& block : AdversarialBlocks()) {
      for (int32_t gain : kGains) {
        // Pre-seed accumulators near the int32 midrange plus extremes so the
        // += path (not just from-zero) is compared.
        std::vector<int32_t> want(block.size(), 70000);
        std::vector<int32_t> got(block.size(), 70000);
        if (!block.empty()) {
          want[0] = got[0] = std::numeric_limits<int32_t>::max() - 32768;
        }
        ref.mix_accumulate(want.data(), block.data(), block.size(), gain);
        ops->mix_accumulate(got.data(), block.data(), block.size(), gain);
        ASSERT_EQ(got, want) << ops->name << " len " << block.size() << " gain " << gain;
      }
    }
  }
}

TEST(KernelGolden, MixAddAndResolveMatchScalar) {
  const KernelOps& ref = ScalarKernels();
  std::mt19937 rng(999);
  std::uniform_int_distribution<int32_t> dist(-200000, 200000);
  for (const KernelOps* ops : AllVariants()) {
    for (size_t len : {0u, 1u, 7u, 8u, 9u, 160u, 1023u}) {
      std::vector<int32_t> a(len), b(len);
      for (size_t i = 0; i < len; ++i) {
        a[i] = dist(rng);
        b[i] = dist(rng);
      }
      if (len >= 2) {
        a[0] = 2000000000;  // resolve must saturate high
        a[1] = -2000000000;  // ... and low
      }
      std::vector<int32_t> want = a;
      std::vector<int32_t> got = a;
      ref.mix_add(want.data(), b.data(), len);
      ops->mix_add(got.data(), b.data(), len);
      ASSERT_EQ(got, want) << ops->name << " len " << len;

      std::vector<Sample> want_out(len), got_out(len);
      ref.mix_resolve(want_out.data(), want.data(), len);
      ops->mix_resolve(got_out.data(), got.data(), len);
      ASSERT_EQ(got_out, want_out) << ops->name << " len " << len;
    }
  }
}

TEST(KernelGolden, ApplyGainMatchesScalar) {
  const KernelOps& ref = ScalarKernels();
  for (const KernelOps* ops : AllVariants()) {
    for (const auto& block : AdversarialBlocks()) {
      for (int32_t gain : kGains) {
        std::vector<Sample> want = block;
        std::vector<Sample> got = block;
        ref.apply_gain(want.data(), want.size(), gain);
        ops->apply_gain(got.data(), got.size(), gain);
        ASSERT_EQ(got, want) << ops->name << " len " << block.size() << " gain " << gain;
      }
    }
  }
}

// The MixAccumulator / ApplyGain public APIs ride the dispatched kernels;
// spot-check their semantics still match the documented formulas.
TEST(KernelGolden, MixAccumulatorSemanticsPreserved) {
  MixAccumulator acc;
  acc.Reset(4);
  std::vector<Sample> a = {1000, -32768, 32767, 5};
  std::vector<Sample> b = {1000, -32768, 32767, 5};
  acc.Accumulate(a, kUnityGain);
  acc.Accumulate(b, 5000);  // half gain, truncating division
  std::vector<Sample> out(4);
  acc.Resolve(out);
  EXPECT_EQ(out[0], 1500);
  EXPECT_EQ(out[1], -32768);  // -32768 + -16384 saturates
  EXPECT_EQ(out[2], 32767);
  EXPECT_EQ(out[3], 7);  // 5 + 5*5000/10000 = 5 + 2
}

// ---------------------------------------------------------------------------
// ADPCM byte-math boundaries (two samples per byte).
// ---------------------------------------------------------------------------

TEST(AdpcmBoundaries, OddSampleCountsRoundUpToWholeBytes) {
  EXPECT_EQ(BytesForSamples(Encoding::kAdpcm4, 0), 0);
  EXPECT_EQ(BytesForSamples(Encoding::kAdpcm4, 1), 1);
  EXPECT_EQ(BytesForSamples(Encoding::kAdpcm4, 7), 4);
  EXPECT_EQ(BytesForSamples(Encoding::kAdpcm4, 8), 4);
  EXPECT_EQ(SamplesInBytes(Encoding::kAdpcm4, 4), 8);

  // The streaming encoder holds a trailing odd sample pending until the
  // next call pairs it (chunk boundaries never pad mid-stream): an odd run
  // emits floor(n/2) bytes now, and one more sample completes the byte.
  for (size_t n : {1u, 3u, 7u, 159u}) {
    std::vector<Sample> in(n);
    for (size_t i = 0; i < n; ++i) {
      in[i] = static_cast<Sample>(1000 * (i % 3) - 500);
    }
    StreamEncoder enc(Encoding::kAdpcm4);
    std::vector<uint8_t> bytes;
    enc.Encode(in, &bytes);
    EXPECT_EQ(bytes.size(), n / 2) << "n=" << n;
    enc.Encode(std::vector<Sample>{0}, &bytes);
    EXPECT_EQ(bytes.size(), (n + 1) / 2) << "n=" << n;
    EXPECT_EQ(static_cast<int64_t>(bytes.size()),
              BytesForSamples(Encoding::kAdpcm4, static_cast<int64_t>(n + 1)));
    StreamDecoder dec(Encoding::kAdpcm4);
    std::vector<Sample> back;
    dec.Decode(bytes, &back);
    EXPECT_EQ(back.size(), (n + 1) / 2 * 2) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// StreamDecoder chunk invariance: decoding a byte stream in arbitrary-sized
// chunks must equal decoding it whole. This is the property the decoded-PCM
// cache relies on (a full-sound decode equals the tick-incremental decode),
// and kPcm16 must survive a chunk boundary splitting a sample.
// ---------------------------------------------------------------------------

TEST(StreamDecoderContinuity, ChunkSplitsAreInvisible) {
  std::vector<Sample> signal(1777);
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> dist(-32768, 32767);
  for (Sample& s : signal) {
    s = static_cast<Sample>(dist(rng));
  }
  for (Encoding encoding : {Encoding::kMulaw8, Encoding::kAlaw8, Encoding::kPcm8,
                            Encoding::kPcm16, Encoding::kAdpcm4}) {
    StreamEncoder enc(encoding);
    std::vector<uint8_t> bytes;
    enc.Encode(signal, &bytes);

    StreamDecoder whole(encoding);
    std::vector<Sample> expect;
    whole.Decode(bytes, &expect);

    // Chunk sizes chosen to land mid-sample for pcm16 (odd sizes) and
    // mid-tick for everything else.
    for (size_t chunk : {1u, 3u, 7u, 160u, 1024u}) {
      StreamDecoder dec(encoding);
      std::vector<Sample> got;
      for (size_t pos = 0; pos < bytes.size(); pos += chunk) {
        size_t n = std::min(chunk, bytes.size() - pos);
        dec.Decode(std::span<const uint8_t>(bytes).subspan(pos, n), &got);
      }
      ASSERT_EQ(got, expect) << "encoding " << static_cast<int>(encoding)
                             << " chunk " << chunk;
    }
  }
}

}  // namespace
}  // namespace aud
