// Seeded chaos/soak: a realtime TCP server under a mix of hostile clients —
// stallers that stop reading, flooders, clients that send truncated frames,
// and clients that die mid-frame — all with fixed seeds so a failure replays
// exactly. The server must keep accepting, keep ticking within latency
// bounds, reclaim every dead client's resources, and (engine_threads > 1)
// keep its output bit-identical to the serial engine while under fire.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/fault_stream.h"
#include "src/transport/framer.h"
#include "src/transport/pipe_stream.h"
#include "src/transport/socket_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

constexpr uint64_t kChaosSeed = 20260805;  // fixed: failures replay exactly

// Sanitizer builds run instrumented code 5-20x slower, and the ctest
// scheduler may co-run another soak on the same cores, so wall-clock latency
// floors widen there. GCC defines __SANITIZE_*; clang uses __has_feature.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define AUD_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define AUD_SANITIZED 1
#endif
#endif
#ifndef AUD_SANITIZED
#define AUD_SANITIZED 0
#endif

// Absolute floor for the soak tick-p99 bound: one 20 ms engine period on a
// clean build, ten under a sanitizer.
constexpr double kTickSoakFloorUs = AUD_SANITIZED ? 200000.0 : 20000.0;

// -- Raw protocol helpers (hostile clients do not get the comfort of Alib) --

// Performs the setup handshake; returns the client's id base, or
// kNoResource when the server refused or the transport died.
ResourceId RawSetup(ByteStream* stream, const std::string& name) {
  SetupRequest request;
  request.client_name = name;
  ByteWriter w;
  request.Encode(&w);
  if (!WriteMessage(stream, MessageType::kRequest, kSetupOpcode, 0, w.bytes())) {
    return kNoResource;
  }
  std::optional<FramedMessage> reply = ReadMessage(stream);
  if (!reply) {
    return kNoResource;
  }
  ByteReader r(reply->payload);
  SetupReply setup = SetupReply::Decode(&r);
  return (r.ok() && setup.success != 0) ? setup.id_base : kNoResource;
}

void SendReq(ByteStream* stream, Opcode opcode, uint32_t seq,
             std::span<const uint8_t> payload) {
  // Failures are expected (the server may have cut us off); ignored.
  WriteMessage(stream, MessageType::kRequest, static_cast<uint16_t>(opcode), seq, payload);
}

// A client that builds up a large reply backlog and never reads it: uploads
// a sound, then requests it back over and over. The writer thread fills the
// socket buffers, the egress queue hits its budget, and the overflow policy
// must cut this client — and only this client — off.
void StallerClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  ResourceId id_base = RawSetup(stream.get(), "staller-" + std::to_string(index));
  if (id_base == kNoResource) {
    return;
  }
  CreateSoundReq create;
  create.id = id_base;
  create.format = kTelephoneFormat;
  ByteWriter cw;
  create.Encode(&cw);
  SendReq(stream.get(), Opcode::kCreateSound, 1, cw.bytes());

  WriteSoundDataReq write;
  write.id = id_base;
  write.data.assign(32 * 1024, 0x55);
  ByteWriter ww;
  write.Encode(&ww);
  SendReq(stream.get(), Opcode::kWriteSoundData, 2, ww.bytes());

  ReadSoundDataReq read;
  read.id = id_base;
  read.length = 32 * 1024;
  ByteWriter rw;
  read.Encode(&rw);
  // ~6 MB of replies we will never read — far past any socket buffer plus
  // the test's 8 KiB egress budget.
  for (uint32_t i = 0; i < 200; ++i) {
    SendReq(stream.get(), Opcode::kReadSoundData, 3 + i, rw.bytes());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stream->Close();
}

// Blasts unknown opcodes (every one earns an error reply) without reading.
void FlooderClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  if (RawSetup(stream.get(), "flooder-" + std::to_string(index)) == kNoResource) {
    return;
  }
  std::vector<uint8_t> junk(64, static_cast<uint8_t>(index));
  for (uint32_t i = 0; i < 400; ++i) {
    SendReq(stream.get(), static_cast<Opcode>(200 + i % 17), i, junk);
  }
  stream->Close();
}

// Never even speaks the protocol: raw garbage, then gone.
void TruncatorClient(uint16_t port, int index) {
  auto stream = ConnectTcp("127.0.0.1", port);
  if (stream == nullptr) {
    return;
  }
  std::vector<uint8_t> garbage(7 + index % 11, 0xEE);
  stream->Write(garbage);
  stream->Close();
}

// Sets up correctly, then dies between a header and its payload — and on a
// second connection, after a partial payload.
void MidFrameKillerClient(uint16_t port, int index) {
  for (size_t cut : {size_t{0}, size_t{5}}) {
    auto stream = ConnectTcp("127.0.0.1", port);
    if (stream == nullptr) {
      return;
    }
    if (RawSetup(stream.get(), "killer-" + std::to_string(index)) == kNoResource) {
      return;
    }
    // A header promising 64 payload bytes, then only `cut` of them.
    std::vector<uint8_t> frame =
        FrameMessage(MessageType::kRequest, 3, 1, std::vector<uint8_t>(64, 0xAA));
    stream->Write(std::span<const uint8_t>(frame).first(kHeaderSize + cut));
    stream->Close();
  }
}

// A well-behaved client doing real (small) work through Alib, with its own
// client-side seeded fault stream chopping its writes — the server sees
// legitimately fragmented traffic, not just hostile garbage.
void NormalClient(uint16_t port, int index) {
  ConnectRetryOptions retry;
  retry.attempts = 10;
  retry.backoff_ms = 10;
  retry.jitter_seed = kChaosSeed + static_cast<uint64_t>(index);
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port,
                                            "normal-" + std::to_string(index), retry);
  if (conn == nullptr) {
    return;
  }
  conn->set_rpc_deadline_ms(5000);
  for (int round = 0; round < 3; ++round) {
    ResourceId loud = conn->CreateLoud(kNoResource, {});
    conn->CreateDevice(loud, DeviceClass::kOutput, {});
    if (!conn->Sync().ok()) {
      break;  // server cut us off under chaos pressure; acceptable
    }
    conn->DestroyLoud(loud);
  }
  conn->Close();
}

TEST(ChaosTest, ServerSurvivesHostileClientMix) {
  BoardConfig config;
  ServerOptions options;
  options.egress_buffer_bytes = 8 * 1024;  // small: overflow must trigger
  options.engine_threads = 2;              // chaos on the parallel tick path
  Board board(config);
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  auto stats = [&] {
    MutexLock lock(&server.mutex());
    return server.state().BuildServerStats(false);
  };
  auto object_count = [&] {
    MutexLock lock(&server.mutex());
    return server.state().object_count();
  };

  // Idle baseline: the tick latency yardstick for the soak assertion.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const ServerStatsReply idle = stats();
  ASSERT_GT(idle.ticks_run, 0u);
  const double idle_p99 = idle.tick_us.empty() ? 0.0 : idle.tick_us.Percentile(99);
  const size_t objects_before = object_count();

  constexpr int kClients = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port, i] {
      switch (i % 5) {
        case 0: NormalClient(port, i); break;
        case 1: StallerClient(port, i); break;
        case 2: FlooderClient(port, i); break;
        case 3: TruncatorClient(port, i); break;
        case 4: MidFrameKillerClient(port, i); break;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // The engine never stopped ticking.
  const ServerStatsReply after = stats();
  EXPECT_GT(after.ticks_run, idle.ticks_run);
  // At least one staller hit the overflow policy and was cut off.
  EXPECT_GE(after.egress_disconnects, 1u);
  // Requests flowed and the error path was exercised, not crashed through.
  EXPECT_GT(after.requests_total, idle.requests_total);
  EXPECT_GT(after.request_errors_total, 0u);

  // The server still accepts and serves a fresh client.
  ConnectRetryOptions retry;
  retry.attempts = 20;
  retry.backoff_ms = 10;
  auto fresh = AudioConnection::OpenTcpRetry("127.0.0.1", port, "survivor", retry);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->Sync().ok());
  auto wire_stats = fresh->GetServerStats(false);
  ASSERT_TRUE(wire_stats.ok()) << wire_stats.status().ToString();
  EXPECT_GE(wire_stats.value().egress_disconnects, 1u);
  fresh->Close();

  // Every dead client's connection and resources get reclaimed: the open-
  // connection gauge returns to zero and the object registry returns to its
  // pre-chaos size (the stallers' sounds are destroyed with their owners).
  bool reclaimed = false;
  for (int i = 0; i < 500 && !reclaimed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reclaimed = stats().connections_open == 0 && object_count() == objects_before;
  }
  EXPECT_TRUE(reclaimed) << "open=" << stats().connections_open
                         << " objects=" << object_count() << " (want "
                         << objects_before << ")";

  // Soak latency bound: chaos may slow ticks, but p99 stays within 2x the
  // idle baseline (with an absolute floor of one engine period — see
  // kTickSoakFloorUs — so a sub-microsecond idle baseline does not make the
  // bound vacuous).
  const double p99 = after.tick_us.empty() ? 0.0 : after.tick_us.Percentile(99);
  EXPECT_LE(p99, std::max(2.0 * idle_p99, kTickSoakFloorUs));

  server.Shutdown();
}

TEST(ChaosTest, SurvivesServerSideFaultInjection) {
  // The accept-path fault stream: every accepted connection misbehaves with
  // its own seed-derived schedule. Individual clients may die mid-setup or
  // mid-call — all acceptable — but the server must outlive all of them and
  // still serve clean stats afterwards (read directly, not over the faulty
  // transport).
  ServerOptions options;
  options.fault.enabled = true;
  options.fault.seed = kChaosSeed;
  options.fault.short_read = 0.05;
  options.fault.chop_write = 0.3;
  options.fault.reset_read = 0.02;
  options.fault.reset_write = 0.02;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  std::atomic<int> attempts{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 12; ++i) {
    clients.emplace_back([port, i, &attempts] {
      for (int round = 0; round < 3; ++round) {
        attempts.fetch_add(1);
        auto conn = AudioConnection::OpenTcp("127.0.0.1", port,
                                             "chaos-" + std::to_string(i));
        if (conn == nullptr) {
          continue;  // injected reset during setup
        }
        conn->set_rpc_deadline_ms(2000);  // injected resets must not hang us
        ResourceId loud = conn->CreateLoud(kNoResource, {});
        conn->CreateDevice(loud, DeviceClass::kOutput, {});
        (void)conn->Sync();  // ok or kTimeout/kConnection — never a hang
        conn->Close();
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(attempts.load(), 36);

  // The server survived; the engine still ticks and all connections die.
  uint64_t ticks;
  {
    MutexLock lock(&server.mutex());
    ticks = server.state().BuildServerStats(false).ticks_run;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(&server.mutex());
    drained = server.state().BuildServerStats(false).connections_open == 0;
  }
  EXPECT_TRUE(drained);
  {
    MutexLock lock(&server.mutex());
    EXPECT_GT(server.state().BuildServerStats(false).ticks_run, ticks);
  }
  server.Shutdown();
}

TEST(ChaosTest, StatsStayCoherentUnderChaos) {
  // Observability must not lie under fire: pollers hammer the stats path —
  // both in-process (BuildServerStats under the lock) and over the wire
  // (GetServerStats/GetEntityStats) — while the hostile client mix runs, and
  // every snapshot must satisfy the cross-field invariants. A torn read
  // (e.g. ticks_run from one epoch, epoch_commits from another) or a
  // non-monotone counter is a bug even if nothing crashes.
  BoardConfig config;
  ServerOptions options;
  options.egress_buffer_bytes = 8 * 1024;  // small: overflow must trigger
  options.engine_threads = 2;
  options.trace_sample_every = 4;  // tracing counters move under chaos too
  Board board(config);
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  // gtest assertion macros are not thread-safe; pollers record violations
  // here and the main thread asserts once at the end.
  Mutex failures_mu;
  std::vector<std::string> failures;
  auto fail = [&](const std::string& who, const std::string& what) {
    MutexLock lock(&failures_mu);
    if (failures.size() < 20) {
      failures.push_back(who + ": " + what);
    }
  };
  auto check_snapshot = [&](const std::string& who, const ServerStatsReply& s,
                            uint64_t prev_ticks, uint64_t prev_uptime) {
    if (s.stats_version != kServerStatsVersion) {
      fail(who, "stats_version " + std::to_string(s.stats_version));
    }
    if (s.proto_major != kProtocolMajor) {
      fail(who, "proto_major " + std::to_string(s.proto_major));
    }
    if (s.trace_sample_every != 4) {
      fail(who, "trace_sample_every " + std::to_string(s.trace_sample_every));
    }
    // ticks_run and epoch_commits move together inside the commit critical
    // section; any snapshot where they differ is a torn read.
    if (s.epoch_commits != s.ticks_run) {
      fail(who, "epoch_commits " + std::to_string(s.epoch_commits) +
                    " != ticks_run " + std::to_string(s.ticks_run));
    }
    // Every dispatched request arrived in a framed message, so the ingress
    // byte counter can never lag the request counter's header bytes.
    if (s.bytes_in < s.requests_total * kHeaderSize) {
      fail(who, "bytes_in " + std::to_string(s.bytes_in) + " < " +
                    std::to_string(s.requests_total) + " requests * header");
    }
    // The overflow policy only drops events that were already counted as
    // sent at enqueue time.
    if (s.events_dropped > s.events_sent) {
      fail(who, "events_dropped " + std::to_string(s.events_dropped) +
                    " > events_sent " + std::to_string(s.events_sent));
    }
    if (s.connections_open < 0) {
      fail(who, "connections_open " + std::to_string(s.connections_open));
    }
    if (s.ticks_run < prev_ticks) {
      fail(who, "ticks_run went backwards: " + std::to_string(s.ticks_run) +
                    " after " + std::to_string(prev_ticks));
    }
    if (s.uptime_ms < prev_uptime) {
      fail(who, "uptime_ms went backwards: " + std::to_string(s.uptime_ms) +
                    " after " + std::to_string(prev_uptime));
    }
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};
  std::vector<std::thread> pollers;

  // In-process pollers: straight into BuildServerStats under the lock.
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&, p] {
      const std::string who = "lock-poller-" + std::to_string(p);
      uint64_t prev_ticks = 0;
      uint64_t prev_uptime = 0;
      while (!stop.load()) {
        ServerStatsReply s;
        {
          MutexLock lock(&server.mutex());
          s = server.state().BuildServerStats(false);
        }
        check_snapshot(who, s, prev_ticks, prev_uptime);
        prev_ticks = s.ticks_run;
        prev_uptime = s.uptime_ms;
        polls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Wire poller: the same invariants must survive encode/decode and the
  // dispatcher path, plus the per-connection breakdown from GetEntityStats.
  pollers.emplace_back([&] {
    const std::string who = "wire-poller";
    ConnectRetryOptions retry;
    retry.attempts = 10;
    retry.backoff_ms = 10;
    auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port, who, retry);
    if (conn == nullptr) {
      fail(who, "could not connect");
      return;
    }
    conn->set_rpc_deadline_ms(5000);
    uint64_t prev_ticks = 0;
    uint64_t prev_uptime = 0;
    while (!stop.load()) {
      auto s = conn->GetServerStats(false);
      if (!s.ok()) {
        fail(who, "GetServerStats failed: " + s.status().ToString());
        break;
      }
      check_snapshot(who, s.value(), prev_ticks, prev_uptime);
      prev_ticks = s.value().ticks_run;
      prev_uptime = s.value().uptime_ms;
      auto e = conn->GetEntityStats(true);
      if (!e.ok()) {
        fail(who, "GetEntityStats failed: " + e.status().ToString());
        break;
      }
      for (const ConnectionStatsWire& c : e.value().connections) {
        if (c.bytes_in < c.requests * kHeaderSize) {
          fail(who, "conn #" + std::to_string(c.index) + " bytes_in " +
                        std::to_string(c.bytes_in) + " < " +
                        std::to_string(c.requests) + " requests * header");
        }
        if (c.events_dropped > c.events_sent) {
          fail(who, "conn #" + std::to_string(c.index) + " dropped " +
                        std::to_string(c.events_dropped) + " > sent " +
                        std::to_string(c.events_sent));
        }
      }
      polls.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    conn->Close();
  });

  // The same hostile mix as ServerSurvivesHostileClientMix, polled live.
  constexpr int kClients = 15;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port, i] {
      switch (i % 5) {
        case 0: NormalClient(port, i); break;
        case 1: StallerClient(port, i); break;
        case 2: FlooderClient(port, i); break;
        case 3: TruncatorClient(port, i); break;
        case 4: MidFrameKillerClient(port, i); break;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  // Keep polling briefly after the chaos drains so reclamation is covered.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : pollers) {
    t.join();
  }

  EXPECT_GT(polls.load(), 50u) << "pollers barely ran; the test proved nothing";
  std::string joined;
  for (const std::string& f : failures) {
    joined += "  " + f + "\n";
  }
  EXPECT_TRUE(failures.empty()) << failures.size() << " violations:\n" << joined;
  server.Shutdown();
}

TEST(ChaosTest, NoisyNeighborsAreThrottledWhileGoodClientsServe) {
  // Overload protection under fire (DESIGN.md decision 15): flooders,
  // device hogs, and sound hogs share a realtime TCP server with polite
  // clients. The limits must bite (rate-limit and quota counters move),
  // the abusers must stay *connected* (soft policy refuses, never cuts),
  // and every well-behaved round trip must keep completing.
  ServerOptions options;
  options.max_connections = 32;
  options.limit_rps = 200;
  options.limit_rps_burst = 50;
  options.quota_devices = 4;
  options.quota_sound_bytes = 16 * 1024;
  options.quota_plays = 2;
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  ASSERT_TRUE(server.ListenTcp(0));
  server.StartRealtime();
  const uint16_t port = server.tcp_port();

  std::atomic<uint64_t> rate_limited{0};
  std::atomic<uint64_t> quota_denied{0};
  std::atomic<uint64_t> good_failures{0};
  std::atomic<int64_t> worst_good_rtt_us{0};
  auto drain_errors = [&](AudioConnection* conn) {
    AsyncError e;
    while (conn->NextError(&e)) {
      if (e.error.code == ErrorCode::kRateLimited) {
        rate_limited.fetch_add(1);
      } else if (e.error.code == ErrorCode::kQuotaExceeded) {
        quota_denied.fetch_add(1);
      }
    }
  };
  auto open = [&](const std::string& name) {
    ConnectRetryOptions retry;
    retry.attempts = 10;
    retry.backoff_ms = 10;
    auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port, name, retry);
    if (conn != nullptr) {
      conn->set_rpc_deadline_ms(10000);
    }
    return conn;
  };

  constexpr int kGood = 3;
  std::vector<std::thread> clients;
  for (int i = 0; i < kGood; ++i) {
    clients.emplace_back([&, i] {
      auto conn = open("good-" + std::to_string(i));
      if (conn == nullptr) {
        good_failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < 20; ++round) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!conn->Sync().ok()) {
          good_failures.fetch_add(1);
          break;
        }
        const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        int64_t seen = worst_good_rtt_us.load();
        while (us > seen && !worst_good_rtt_us.compare_exchange_weak(seen, us)) {
        }
        // Polite pacing: far under the 200 rps limit.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      conn->Close();
    });
  }
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&, i] {  // flooder: bursts far past the rps bucket
      auto conn = open("flood-" + std::to_string(i));
      if (conn == nullptr) {
        return;
      }
      for (int round = 0; round < 5; ++round) {
        for (int k = 0; k < 200; ++k) {
          conn->NoOp();
        }
        // The Sync itself may be refused — soft policy answers on its own
        // sequence, so the round trip completes either way. Its refusal is
        // counted once, via the async error list like every other refusal.
        (void)conn->Sync();
        drain_errors(conn.get());
      }
      conn->Close();
    });
    clients.emplace_back([&, i] {  // device hog: 20 creates against quota 4
      auto conn = open("devhog-" + std::to_string(i));
      if (conn == nullptr) {
        return;
      }
      ResourceId loud = conn->CreateLoud(kNoResource, {});
      for (int k = 0; k < 20; ++k) {
        conn->CreateDevice(loud, DeviceClass::kPlayer, {});
      }
      (void)conn->Sync();
      drain_errors(conn.get());
      conn->Close();
    });
    clients.emplace_back([&, i] {  // sound hog: 80 KiB against a 16 KiB quota
      auto conn = open("sndhog-" + std::to_string(i));
      if (conn == nullptr) {
        return;
      }
      ResourceId sound = conn->CreateSound(kTelephoneFormat);
      std::vector<uint8_t> block(8 * 1024, 0x42);
      for (int k = 0; k < 10; ++k) {
        conn->WriteSound(sound, static_cast<uint64_t>(k) * block.size(), block);
      }
      (void)conn->Sync();
      drain_errors(conn.get());
      conn->Close();
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // The abuse registered, the polite clients never noticed, and the soft
  // policy refused without disconnecting anyone (no egress cuts either).
  EXPECT_GT(rate_limited.load(), 0u);
  EXPECT_GT(quota_denied.load(), 0u);
  EXPECT_EQ(good_failures.load(), 0u);
  EXPECT_LT(worst_good_rtt_us.load(), 10'000'000);
  ServerStatsReply stats;
  {
    MutexLock lock(&server.mutex());
    stats = server.state().BuildServerStats(false);
  }
  EXPECT_GE(stats.rate_limited, rate_limited.load());
  EXPECT_GE(stats.quota_denials, quota_denied.load());
  EXPECT_EQ(stats.rate_limit_disconnects, 0u);
  EXPECT_EQ(stats.admission_rejects, 0u);

  // Everyone hung up; reclamation completes as ever.
  bool drained = false;
  for (int i = 0; i < 500 && !drained; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(&server.mutex());
    drained = server.state().BuildServerStats(false).connections_open == 0;
  }
  EXPECT_TRUE(drained);
  server.Shutdown();
}

TEST(ChaosTest, HostileTrafficDoesNotPerturbEngineOutput) {
  // Serial/parallel bit-identity must hold under fire: two servers run the
  // same playback workload while a hostile in-process client floods each
  // with unknown opcodes. Error handling shares the big lock with the tick,
  // but must never change what comes out of the speaker.
  std::vector<Sample> captures[2];
  for (int threads : {1, 4}) {
    BoardConfig config;
    ServerOptions options;
    options.engine_threads = threads;
    Board board(config);
    AudioServer server(&board, options);
    board.speakers()[0]->set_capture_output(true);

    auto [client_end, server_end] = CreatePipePair();
    server.AddConnection(std::move(server_end));
    auto client = AudioConnection::Open(std::move(client_end), "player");
    ASSERT_NE(client, nullptr);
    AudioToolkit toolkit(client.get());
    toolkit.set_time_pump([&] { server.StepFrames(160); });

    // A deterministic 500 ms tone, queued but not yet run.
    std::vector<Sample> pcm(4000);
    for (size_t i = 0; i < pcm.size(); ++i) {
      pcm[i] = static_cast<Sample>(6000.0 * std::sin(0.2 * static_cast<double>(i)));
    }
    ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
    auto chain = toolkit.BuildPlaybackChain();
    client->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
    client->StartQueue(chain.loud);
    ASSERT_TRUE(client->Sync().ok());

    // The hostile client hammers the dispatcher while the engine runs.
    auto [hostile_client_end, hostile_server_end] = CreatePipePair();
    server.AddConnection(std::move(hostile_server_end));
    ASSERT_NE(RawSetup(hostile_client_end.get(), "hostile"), kNoResource);
    std::atomic<bool> stop{false};
    std::thread hostile([&] {
      std::vector<uint8_t> junk(32, 0xBD);
      uint32_t seq = 1;
      while (!stop.load()) {
        SendReq(hostile_client_end.get(), static_cast<Opcode>(230 + seq % 7), seq, junk);
        ++seq;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    server.StepFrames(160 * 40);  // 800 ms: the whole sound plus completion

    stop.store(true);
    hostile.join();
    hostile_client_end->Close();
    captures[threads == 1 ? 0 : 1] = board.speakers()[0]->played();
    client->Close();
    server.Shutdown();
  }
  EXPECT_GT(Rms(captures[0]), 0.0) << "workload was silent";
  ASSERT_EQ(captures[0].size(), captures[1].size());
  EXPECT_TRUE(captures[0] == captures[1])
      << "parallel engine output diverged from serial under hostile load";
}

}  // namespace
}  // namespace aud
