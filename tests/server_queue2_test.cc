// Second round of command-queue coverage: top-level Delay, nested
// Co-inside-Delay-inside-Co, queued mixer gain, queued device Pause/Resume,
// sync-mark disabling, and clipboard-style sound movement between clients
// (figure 1-1).

#include <gtest/gtest.h>

#include "src/dsp/gain.h"
#include "src/toolkit/audio_manager.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class Queue2Test : public ServerFixture {
 protected:
  ResourceId MakeDcSound(Sample value, int ms) {
    std::vector<Sample> pcm(static_cast<size_t>(8) * ms, value);
    return toolkit_->UploadSound(pcm, {Encoding::kPcm16, 8000});
  }
};

TEST_F(Queue2Test, TopLevelDelaySpacesSounds) {
  board_->speakers()[0]->set_capture_output(true);
  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId a = MakeDcSound(1000, 100);
  ResourceId b = MakeDcSound(2000, 100);
  // play A ; delay 250 ms (empty body) ; play B
  client_->Enqueue(chain.loud,
                   {PlayCommand(chain.player, a, 1), DelayCommand(250), DelayEndCommand(),
                    PlayCommand(chain.player, b, 2)});
  client_->StartQueue(chain.loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(2));
  StepMs(800);

  // Between the end of A and the start of B there are exactly 2000
  // silence samples (250 ms at 8 kHz).
  const auto& played = board_->speakers()[0]->played();
  size_t a_end = 0;
  size_t b_start = 0;
  for (size_t i = 0; i < played.size(); ++i) {
    if (played[i] == 1000) {
      a_end = i + 1;
    }
    if (played[i] == 2000 && b_start == 0) {
      b_start = i;
    }
  }
  ASSERT_GT(b_start, a_end);
  EXPECT_EQ(b_start - a_end, 2000u);
}

TEST_F(Queue2Test, NestedCoInsideDelayInsideCo) {
  // cobegin { play A ; delay 100ms { cobegin play B, play C coend } } coend
  board_->speakers()[0]->set_capture_output(true);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId p1 = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId p2 = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId p3 = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  AttrList mixer_attrs;
  mixer_attrs.SetU32(AttrTag::kInputPorts, 3);
  ResourceId mixer = client_->CreateDevice(loud, DeviceClass::kMixer, mixer_attrs);
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(p1, 0, mixer, 0);
  client_->CreateWire(p2, 0, mixer, 1);
  client_->CreateWire(p3, 0, mixer, 2);
  client_->CreateWire(mixer, 0, output, 0);
  client_->SelectEvents(loud, kQueueEvents);
  client_->MapLoud(loud);

  ResourceId a = MakeDcSound(1000, 300);
  ResourceId b = MakeDcSound(2000, 100);
  ResourceId c = MakeDcSound(4000, 100);
  client_->Enqueue(loud, {CoBeginCommand(), PlayCommand(p1, a, 1), DelayCommand(100),
                          CoBeginCommand(), PlayCommand(p2, b, 2), PlayCommand(p3, c, 3),
                          CoEndCommand(), DelayEndCommand(), CoEndCommand()});
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 30000));
  StepMs(600);

  // During [100ms,200ms): A+B+C all sound: 7000.
  const auto& played = board_->speakers()[0]->played();
  int triple = 0;
  int a_alone = 0;
  for (Sample s : played) {
    if (s == 7000) {
      ++triple;
    }
    if (s == 1000) {
      ++a_alone;
    }
  }
  EXPECT_EQ(triple, 800);          // 100 ms of full overlap
  EXPECT_EQ(a_alone, 800 + 800);   // 100 ms before B/C + 100 ms after
}

TEST_F(Queue2Test, QueuedMixerGainTakesEffectBetweenPlays) {
  board_->speakers()[0]->set_capture_output(true);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId mixer = client_->CreateDevice(loud, DeviceClass::kMixer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(player, 0, mixer, 0);
  client_->CreateWire(mixer, 0, output, 0);
  client_->SelectEvents(loud, kQueueEvents);
  client_->MapLoud(loud);

  ResourceId a = MakeDcSound(10000, 50);
  client_->Enqueue(loud, {PlayCommand(player, a, 1),
                          SetInputGainCommand(mixer, 0, kUnityGain / 4, 2),
                          PlayCommand(player, a, 3)});
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3));
  StepMs(300);

  int full = 0;
  int quarter = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 10000) {
      ++full;
    }
    if (s == 2500) {
      ++quarter;
    }
  }
  // No samples lost, and the gain change lands within one engine period
  // (control changes are period-quantized; see docs/PROTOCOL.md).
  EXPECT_EQ(full + quarter, 800);
  EXPECT_NEAR(full, 400, 160);
}

TEST_F(Queue2Test, QueuedPauseResumeAroundPlays) {
  // Queued device Pause on the player between two plays: play A, pause
  // (instant no-op while idle), resume, play B -- all complete in order.
  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId a = MakeDcSound(1000, 50);
  client_->Enqueue(chain.loud,
                   {PlayCommand(chain.player, a, 1), PauseCommand(chain.player, 2),
                    ResumeCommand(chain.player, 3), PlayCommand(chain.player, a, 4)});
  client_->StartQueue(chain.loud);
  Flush();
  EXPECT_TRUE(toolkit_->WaitCommandDone(4));
}

TEST_F(Queue2Test, SyncMarksDisableMidPlay) {
  auto tone = TestTone(1500);
  ResourceId sound = toolkit_->UploadSound(tone, kTelephoneFormat);
  auto chain = toolkit_->BuildPlaybackChain();
  client_->SetSyncMarks(chain.loud, 100);
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  Flush();
  StepMs(400);
  client_->SetSyncMarks(chain.loud, 0);  // disable
  Flush();
  // Drain whatever was emitted up to the disable point.
  EventMessage event;
  while (client_->PollEvent(&event)) {
  }
  StepMs(600);
  int late_marks = 0;
  while (client_->PollEvent(&event)) {
    if (event.type == EventType::kSyncMark) {
      ++late_marks;
    }
  }
  EXPECT_EQ(late_marks, 0);
}

TEST_F(Queue2Test, ClipboardMovesSoundBetweenApplications) {
  // Figure 1-1: a voice message is copied out of the "voice mail"
  // application and pasted into the "calendar" application.
  auto voicemail_conn = Connect("voicemail");
  auto calendar_conn = Connect("calendar");
  ASSERT_NE(voicemail_conn, nullptr);
  ASSERT_NE(calendar_conn, nullptr);
  AudioToolkit voicemail(voicemail_conn.get());
  AudioToolkit calendar(calendar_conn.get());
  voicemail.set_time_pump([this] { server_->StepFrames(160); });
  calendar.set_time_pump([this] { server_->StepFrames(160); });

  std::vector<Sample> message(1000, 4321);
  ResourceId original = voicemail.UploadSound(message, {Encoding::kPcm16, 8000});
  voicemail.CopyToClipboard(original);
  ASSERT_TRUE(voicemail_conn->Sync().ok());

  ResourceId pasted = calendar.PasteFromClipboard();
  ASSERT_NE(pasted, kNoResource);
  auto data = calendar.DownloadSound(pasted);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), message);
}

TEST_F(Queue2Test, EmptyClipboardPastesNothing) {
  EXPECT_EQ(toolkit_->PasteFromClipboard(), kNoResource);
}

TEST_F(Queue2Test, AudioManagerReadsDomainProperty) {
  // The paper's DOMAIN-property convention (section 5.8): the manager's
  // filter consults the property the application attached to its LOUD.
  auto manager_conn = Connect("manager");
  ASSERT_NE(manager_conn, nullptr);
  AudioManager manager(manager_conn.get(), AudioManager::Policy::kAllowAll);
  manager.set_map_filter([&](ResourceId loud) {
    auto domain = manager_conn->GetProperty(loud, "DOMAIN");
    if (!domain.ok() || domain.value().found == 0) {
      return false;  // no declared domain: refuse
    }
    std::string value(domain.value().value.begin(), domain.value().value.end());
    return value == "desktop";
  });
  ASSERT_TRUE(manager_conn->Sync().ok());

  ResourceId polite = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(polite, DeviceClass::kOutput, {});
  std::string desk = "desktop";
  client_->ChangeProperty(polite, "DOMAIN", "STRING",
                          std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(desk.data()), desk.size()));
  ResourceId rude = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(rude, DeviceClass::kOutput, {});

  client_->MapLoud(polite);
  client_->MapLoud(rude);
  Flush();
  for (int i = 0; i < 100 && manager.Pump() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(manager_conn->Sync().ok());
  EXPECT_EQ(client_->QueryLoud(polite).value().mapped, 1);
  EXPECT_EQ(client_->QueryLoud(rude).value().mapped, 0);
}

}  // namespace
}  // namespace aud
