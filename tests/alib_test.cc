// Alib client-library unit tests: connection lifecycle, reply/error
// multiplexing, event queue behaviour, id allocation and the blocking
// semantics of WaitReply ("blocking on a request with a reply is
// tantamount to synchronizing with the server", section 4.1).

#include <gtest/gtest.h>

#include "tests/server_fixture.h"

namespace aud {
namespace {

class AlibTest : public ServerFixture {};

TEST_F(AlibTest, SetupExposesServerMetadata) {
  EXPECT_TRUE(client_->connected());
  EXPECT_EQ(client_->server_name(), "netaudio");
  EXPECT_NE(client_->device_loud(), kNoResource);
}

TEST_F(AlibTest, BadSetupMagicRefused) {
  auto [client_end, server_end] = CreatePipePair();
  server_->AddConnection(std::move(server_end));
  SetupRequest request;
  request.magic = 0xDEADBEEF;
  ByteWriter w;
  request.Encode(&w);
  ASSERT_TRUE(
      WriteMessage(client_end.get(), MessageType::kRequest, kSetupOpcode, 0, w.bytes()));
  auto reply = ReadMessage(client_end.get());
  ASSERT_TRUE(reply.has_value());
  ByteReader r(reply->payload);
  EXPECT_EQ(SetupReply::Decode(&r).success, 0);
}

TEST_F(AlibTest, IdAllocationIsSequentialWithinBlock) {
  ResourceId first = client_->AllocId();
  for (int i = 1; i <= 100; ++i) {
    EXPECT_EQ(client_->AllocId(), first + static_cast<ResourceId>(i));
  }
}

TEST_F(AlibTest, RepliesRouteBySequenceUnderInterleaving) {
  // Fire many queries without waiting, then collect replies in reverse
  // order: each WaitReply must return its own reply.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  Flush();
  std::vector<uint32_t> seqs;
  for (int i = 0; i < 20; ++i) {
    ResourceReq req{loud};
    ByteWriter w;
    req.Encode(&w);
    seqs.push_back(client_->SendRequest(Opcode::kQueryLoud, w.bytes()));
  }
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    auto reply = client_->WaitReply(*it);
    ASSERT_TRUE(reply.ok());
    ByteReader r(reply.value());
    EXPECT_EQ(LoudStateReply::Decode(&r).loud, loud);
  }
}

TEST_F(AlibTest, WaitReplySurfacesErrorForItsSequence) {
  ResourceReq req{0xBAD0BAD};
  ByteWriter w;
  req.Encode(&w);
  uint32_t seq = client_->SendRequest(Opcode::kQueryLoud, w.bytes());
  auto reply = client_->WaitReply(seq);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kBadResource);
  // The error was consumed by WaitReply but remains observable in the
  // async queue too (single notification contract: drained below).
  AsyncError error;
  while (client_->NextError(&error)) {
  }
}

TEST_F(AlibTest, WaitEventTimesOutCleanly) {
  EventMessage event;
  EXPECT_FALSE(client_->WaitEvent(&event, 50));
}

TEST_F(AlibTest, PollEventReturnsQueuedEventsInOrder) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->SelectEvents(loud, kLifecycleEvents);
  client_->MapLoud(loud);
  client_->UnmapLoud(loud);
  Flush();
  std::vector<EventType> order;
  EventMessage event;
  while (client_->PollEvent(&event)) {
    order.push_back(event.type);
  }
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], EventType::kMapNotify);
  // Activate follows map; unmap and deactivate follow in some order after.
  EXPECT_EQ(order[1], EventType::kActivateNotify);
}

TEST_F(AlibTest, CloseUnblocksPendingWaits) {
  auto client2 = Connect("closer");
  ASSERT_NE(client2, nullptr);
  std::thread waiter([&] {
    EventMessage event;
    EXPECT_FALSE(client2->WaitEvent(&event, 10000));  // unblocked by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client2->Close();
  waiter.join();
  EXPECT_FALSE(client2->connected());
}

TEST_F(AlibTest, RequestsAfterServerShutdownFailGracefully) {
  auto client2 = Connect("orphan");
  ASSERT_NE(client2, nullptr);
  ASSERT_TRUE(client2->Sync().ok());
  // Simulate server-side close of this connection's stream by closing our
  // end; further round trips fail with kConnection.
  client2->Close();
  auto result = client2->Sync();
  EXPECT_FALSE(result.ok());
}

TEST_F(AlibTest, EventsCarryServerTime) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->SelectEvents(loud, kLifecycleEvents);
  StepMs(250);
  client_->MapLoud(loud);
  Flush();
  EventMessage event;
  ASSERT_TRUE(client_->WaitEvent(&event, 1000));
  EXPECT_GE(event.server_time, 250 * kTicksPerMillisecond);
}

TEST_F(AlibTest, CommandBuildersEncodeDeviceAndTag) {
  CommandSpec spec = SendDtmfCommand(42, "123#", 7);
  EXPECT_EQ(spec.device, 42u);
  EXPECT_EQ(spec.command, DeviceCommand::kSendDtmf);
  EXPECT_EQ(spec.tag, 7u);
  EXPECT_EQ(StringArg::Decode(spec.args).value, "123#");

  CommandSpec co = CoBeginCommand();
  EXPECT_EQ(co.device, kNoResource);
  EXPECT_TRUE(IsQueuePseudoCommand(co.command));
}

}  // namespace
}  // namespace aud
