// GetServerStats / GetServerTrace over a real connection (ISSUE: in-
// protocol introspection). Verifies that playing a sound moves the
// per-opcode request counters, populates the tick histogram, and counts
// transport bytes; that the trace ring carries tick events; and that a
// client can poll stats concurrently with a multi-threaded engine.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

uint64_t OpcodeCount(const ServerStatsReply& stats, Opcode opcode) {
  for (const OpcodeStats& op : stats.opcodes) {
    if (op.opcode == static_cast<uint16_t>(opcode)) {
      return op.count;
    }
  }
  return 0;
}

class ServerStatsTest : public ServerFixture {};

TEST_F(ServerStatsTest, StatsReflectPlayback) {
  // Drive real work first so every counter the test checks has moved.
  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId sound = toolkit_->UploadSound(TestTone(200), {Encoding::kPcm16, 8000});
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound, 30000));

  auto stats = client_->GetServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ServerStatsReply& s = stats.value();

  EXPECT_EQ(s.stats_version, kServerStatsVersion);
  EXPECT_EQ(s.proto_major, kProtocolMajor);
  EXPECT_EQ(s.proto_minor, kProtocolMinor);
  EXPECT_EQ(s.engine_rate_hz, 8000u);
  EXPECT_EQ(s.engine_threads, 1u);

  // The playback chain issued these opcodes at least once each.
  EXPECT_GE(OpcodeCount(s, Opcode::kCreateLoud), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kCreateVirtualDevice), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kWriteSoundData), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kEnqueueCommands), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kGetServerStats), 1u);
  EXPECT_GE(s.requests_total, 8u);
  EXPECT_FALSE(s.dispatch_us.empty());

  // PlayAndWait pumped virtual time, so ticks ran and were timed.
  EXPECT_GT(s.ticks_run, 0u);
  EXPECT_FALSE(s.tick_us.empty());
  EXPECT_EQ(s.tick_us.count, s.ticks_run);
  EXPECT_GE(s.tick_us.Percentile(99), s.tick_us.Percentile(50));

  // Transport accounting: both directions carried real bytes.
  EXPECT_EQ(s.connections_open, 1);
  EXPECT_GE(s.connections_total, 1u);
  EXPECT_GT(s.bytes_in, 0u);
  EXPECT_GT(s.bytes_out, 0u);
  EXPECT_GT(s.events_sent, 0u);  // queue started/stopped, CommandDone

  EXPECT_GT(s.objects, 0u);
  EXPECT_GE(s.commands_enqueued, 1u);
  EXPECT_GE(s.commands_done, 1u);
  EXPECT_GE(s.queue_events, 1u);
}

TEST_F(ServerStatsTest, PerOpcodeErrorsAndTotalsAdvance) {
  auto before = client_->GetServerStats();
  ASSERT_TRUE(before.ok());

  // A query for a nonexistent LOUD produces an asynchronous error.
  auto bad = client_->QueryLoud(0xDEAD);
  EXPECT_FALSE(bad.ok());

  auto after = client_->GetServerStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().request_errors_total,
            before.value().request_errors_total + 1);
  EXPECT_GT(after.value().requests_total, before.value().requests_total);
  EXPECT_GE(OpcodeCount(after.value(), Opcode::kQueryLoud), 1u);
}

TEST_F(ServerStatsTest, StatsWithoutOpcodeTableIsSmaller) {
  auto with = client_->GetServerStats(true);
  auto without = client_->GetServerStats(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(with.value().opcodes.empty());
  EXPECT_TRUE(without.value().opcodes.empty());
  EXPECT_GT(without.value().requests_total, 0u);
}

TEST_F(ServerStatsTest, TraceCarriesTickAndDispatchEvents) {
  StepMs(100);
  client_->GetServerStats();  // guarantee at least one dispatch trace
  auto trace = client_->GetServerTrace();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_FALSE(trace.value().events.empty());

  bool saw_tick = false;
  bool saw_dispatch = false;
  uint64_t prev_seq = 0;
  bool first = true;
  for (const TraceEventWire& e : trace.value().events) {
    EXPECT_LT(e.reason, static_cast<uint16_t>(obs::TraceReason::kTraceReasonCount));
    if (!first) {
      EXPECT_GT(e.seq, prev_seq);  // merged snapshot is seq-ordered
    }
    prev_seq = e.seq;
    first = false;
    auto reason = static_cast<obs::TraceReason>(e.reason);
    saw_tick |= reason == obs::TraceReason::kTickStart ||
                reason == obs::TraceReason::kTickEnd;
    saw_dispatch |= reason == obs::TraceReason::kDispatch;
  }
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_dispatch);

  // max_events truncation keeps only the newest.
  auto few = client_->GetServerTrace(3);
  ASSERT_TRUE(few.ok());
  EXPECT_LE(few.value().events.size(), 3u);
}

TEST_F(ServerStatsTest, UptimeAndServerTimeAdvance) {
  auto a = client_->GetServerStats(false);
  ASSERT_TRUE(a.ok());
  StepMs(40);
  auto b = client_->GetServerStats(false);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().server_time, a.value().server_time);
  EXPECT_GE(b.value().uptime_ms, a.value().uptime_ms);
  EXPECT_EQ(b.value().ticks_run, a.value().ticks_run + 2);  // 40 ms = 2 periods
}

TEST(ServerStatsTcp, StatsOverTcpConnection) {
  Board board{BoardConfig{}};
  AudioServer server(&board);
  ASSERT_TRUE(server.ListenTcp(0));
  auto client = AudioConnection::OpenTcp("127.0.0.1", server.tcp_port(), "stats-tcp");
  ASSERT_NE(client, nullptr);
  server.StepFrames(320);
  auto stats = client->GetServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().connections_total, 1u);
  EXPECT_GT(stats.value().bytes_in, 0u);
  EXPECT_EQ(stats.value().ticks_run, 2u);
  client->Close();
  server.Shutdown();
}

// The TSan target: a client hammers GetServerStats/GetServerTrace while a
// 4-thread engine ticks islands in parallel and another client plays audio.
// All snapshots happen under the big lock; this test exists to let the
// sanitizer prove that claim.
TEST(ServerStatsParallel, PollStatsWhileParallelEngineTicks) {
  BoardConfig config;
  config.speakers = 2;
  ServerOptions options;
  options.engine_threads = 4;
  Board board{config};
  AudioServer server(&board, options);

  auto [client_end, server_end] = CreatePipePair();
  server.AddConnection(std::move(server_end));
  auto player = AudioConnection::Open(std::move(client_end), "player");
  ASSERT_NE(player, nullptr);
  auto [poll_client_end, poll_server_end] = CreatePipePair();
  server.AddConnection(std::move(poll_server_end));
  auto poller = AudioConnection::Open(std::move(poll_client_end), "poller");
  ASSERT_NE(poller, nullptr);

  // Two independent playback chains => two islands per tick.
  AudioToolkit toolkit(player.get());
  std::atomic<bool> stop{false};
  toolkit.set_time_pump([&server] { server.StepFrames(160); });
  auto chain_a = toolkit.BuildPlaybackChain();
  auto chain_b = toolkit.BuildPlaybackChain();
  std::vector<Sample> tone(8000, 2000);
  ResourceId sound_a = toolkit.UploadSound(tone, {Encoding::kPcm16, 8000});
  ResourceId sound_b = toolkit.UploadSound(tone, {Encoding::kPcm16, 8000});
  player->Enqueue(chain_a.loud, {PlayCommand(chain_a.player, sound_a, 1)});
  player->Enqueue(chain_b.loud, {PlayCommand(chain_b.player, sound_b, 2)});
  player->StartQueue(chain_a.loud);
  player->StartQueue(chain_b.loud);
  ASSERT_TRUE(player->Sync().ok());

  std::thread poll_thread([&poller, &stop] {
    while (!stop.load()) {
      auto stats = poller->GetServerStats();
      ASSERT_TRUE(stats.ok());
      auto trace = poller->GetServerTrace(64);
      ASSERT_TRUE(trace.ok());
    }
  });

  // ~1.2 s of audio in 20 ms steps, parallel islands the whole way.
  for (int i = 0; i < 60; ++i) {
    server.StepFrames(160);
  }
  stop.store(true);
  poll_thread.join();

  auto stats = poller->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().engine_threads, 4u);
  EXPECT_FALSE(stats.value().islands_per_tick.empty());
  EXPECT_GE(stats.value().islands_per_tick.max, 2u);
  EXPECT_FALSE(stats.value().worker_imbalance.empty());
  EXPECT_FALSE(stats.value().tick_us.empty());

  player->Close();
  poller->Close();
  server.Shutdown();
}

}  // namespace
}  // namespace aud
