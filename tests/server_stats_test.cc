// GetServerStats / GetServerTrace over a real connection (ISSUE: in-
// protocol introspection). Verifies that playing a sound moves the
// per-opcode request counters, populates the tick histogram, and counts
// transport bytes; that the trace ring carries tick events; and that a
// client can poll stats concurrently with a multi-threaded engine.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

uint64_t OpcodeCount(const ServerStatsReply& stats, Opcode opcode) {
  for (const OpcodeStats& op : stats.opcodes) {
    if (op.opcode == static_cast<uint16_t>(opcode)) {
      return op.count;
    }
  }
  return 0;
}

class ServerStatsTest : public ServerFixture {};

TEST_F(ServerStatsTest, StatsReflectPlayback) {
  // Drive real work first so every counter the test checks has moved.
  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId sound = toolkit_->UploadSound(TestTone(200), {Encoding::kPcm16, 8000});
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound, 30000));

  auto stats = client_->GetServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const ServerStatsReply& s = stats.value();

  EXPECT_EQ(s.stats_version, kServerStatsVersion);
  EXPECT_EQ(s.proto_major, kProtocolMajor);
  EXPECT_EQ(s.proto_minor, kProtocolMinor);
  EXPECT_EQ(s.engine_rate_hz, 8000u);
  EXPECT_EQ(s.engine_threads, 1u);

  // The playback chain issued these opcodes at least once each.
  EXPECT_GE(OpcodeCount(s, Opcode::kCreateLoud), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kCreateVirtualDevice), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kWriteSoundData), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kEnqueueCommands), 1u);
  EXPECT_GE(OpcodeCount(s, Opcode::kGetServerStats), 1u);
  EXPECT_GE(s.requests_total, 8u);
  EXPECT_FALSE(s.dispatch_us.empty());

  // PlayAndWait pumped virtual time, so ticks ran and were timed.
  EXPECT_GT(s.ticks_run, 0u);
  EXPECT_FALSE(s.tick_us.empty());
  EXPECT_EQ(s.tick_us.count, s.ticks_run);
  EXPECT_GE(s.tick_us.Percentile(99), s.tick_us.Percentile(50));

  // Transport accounting: both directions carried real bytes.
  EXPECT_EQ(s.connections_open, 1);
  EXPECT_GE(s.connections_total, 1u);
  EXPECT_GT(s.bytes_in, 0u);
  EXPECT_GT(s.bytes_out, 0u);
  EXPECT_GT(s.events_sent, 0u);  // queue started/stopped, CommandDone

  EXPECT_GT(s.objects, 0u);
  EXPECT_GE(s.commands_enqueued, 1u);
  EXPECT_GE(s.commands_done, 1u);
  EXPECT_GE(s.queue_events, 1u);
}

TEST_F(ServerStatsTest, PerOpcodeErrorsAndTotalsAdvance) {
  auto before = client_->GetServerStats();
  ASSERT_TRUE(before.ok());

  // A query for a nonexistent LOUD produces an asynchronous error.
  auto bad = client_->QueryLoud(0xDEAD);
  EXPECT_FALSE(bad.ok());

  auto after = client_->GetServerStats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().request_errors_total,
            before.value().request_errors_total + 1);
  EXPECT_GT(after.value().requests_total, before.value().requests_total);
  EXPECT_GE(OpcodeCount(after.value(), Opcode::kQueryLoud), 1u);
}

TEST_F(ServerStatsTest, StatsWithoutOpcodeTableIsSmaller) {
  auto with = client_->GetServerStats(true);
  auto without = client_->GetServerStats(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(with.value().opcodes.empty());
  EXPECT_TRUE(without.value().opcodes.empty());
  EXPECT_GT(without.value().requests_total, 0u);
}

TEST_F(ServerStatsTest, TraceCarriesTickAndDispatchEvents) {
  StepMs(100);
  (void)client_->GetServerStats();  // guarantee at least one dispatch trace
  auto trace = client_->GetServerTrace();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_FALSE(trace.value().events.empty());

  bool saw_tick = false;
  bool saw_dispatch = false;
  uint64_t prev_seq = 0;
  bool first = true;
  for (const TraceEventWire& e : trace.value().events) {
    EXPECT_LT(e.reason, static_cast<uint16_t>(obs::TraceReason::kTraceReasonCount));
    if (!first) {
      EXPECT_GT(e.seq, prev_seq);  // merged snapshot is seq-ordered
    }
    prev_seq = e.seq;
    first = false;
    auto reason = static_cast<obs::TraceReason>(e.reason);
    saw_tick |= reason == obs::TraceReason::kTickStart ||
                reason == obs::TraceReason::kTickEnd;
    saw_dispatch |= reason == obs::TraceReason::kDispatch;
  }
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_dispatch);

  // max_events truncation keeps only the newest.
  auto few = client_->GetServerTrace(3);
  ASSERT_TRUE(few.ok());
  EXPECT_LE(few.value().events.size(), 3u);
}

// The tentpole end-to-end check: with sampling on, a traced play request
// produces a linked span tree — root kSpanRequest, kSpanDispatch and
// kSpanEgress parented on it, kSpanWrite parented on the egress span, and
// the mouth-to-ear pair (kSpanEpoch + kMouthToEar) closing the loop at the
// epoch that first mixed the sound.
TEST_F(ServerStatsTest, RequestTraceLinksSpansEndToEnd) {
  ServerOptions options;
  options.trace_sample_every = 1;  // every request gets a root span
  Init(BoardConfig{}, options);
  // Drive time manually: the toolkit's spinning time pump would tick the
  // engine thousands of times per round-trip, flooding the bounded trace
  // rings with tick events and evicting the very spans under test.
  toolkit_->set_time_pump({});

  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId sound = toolkit_->UploadSound(TestTone(100), {Encoding::kPcm16, 8000});
  client_->Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client_->StartQueue(chain.loud);
  ASSERT_TRUE(client_->Sync().ok());
  StepMs(200);  // play the whole sound; the first epoch commits mouth-to-ear

  // The raw ring now carries the StartQueue request's root span; its trace
  // id embeds this client's id base and the request sequence. Ask for an
  // unbounded snapshot — the default cap keeps only the newest ring-full.
  auto raw = client_->GetServerTrace(1u << 20);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  uint64_t want = 0;
  for (const TraceEventWire& e : raw.value().events) {
    if (e.reason == static_cast<uint16_t>(obs::TraceReason::kSpanRequest) &&
        e.arg0 == static_cast<uint32_t>(Opcode::kStartQueue)) {
      want = e.trace;
    }
  }
  ASSERT_NE(want, 0u) << "no sampled StartQueue root span in the ring";
  EXPECT_EQ(want >> 32, static_cast<uint64_t>(client_->id_base()));
  EXPECT_EQ(client_->TraceIdFor(static_cast<uint32_t>(want & 0xFFFFFFFFu)), want);

  auto traced = client_->GetRequestTrace(want);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  const RequestTraceReply& t = traced.value();
  EXPECT_EQ(t.trace_version, kRequestTraceVersion);
  EXPECT_EQ(t.trace_id, want);
  ASSERT_FALSE(t.spans.empty());

  uint64_t root_seq = 0;
  bool saw_dispatch = false;
  bool saw_epoch = false;
  bool saw_mouth_to_ear = false;
  for (const TraceEventWire& e : t.spans) {
    EXPECT_EQ(e.trace, want) << "span from a foreign trace leaked in";
    switch (static_cast<obs::TraceReason>(e.reason)) {
      case obs::TraceReason::kSpanRequest:
        root_seq = e.seq;
        EXPECT_EQ(e.parent, 0u) << "request span must be the root";
        EXPECT_EQ(e.arg0, static_cast<uint32_t>(Opcode::kStartQueue));
        break;
      case obs::TraceReason::kSpanDispatch:
        saw_dispatch = true;
        EXPECT_EQ(e.parent, root_seq);
        break;
      case obs::TraceReason::kSpanEpoch:
        saw_epoch = true;
        EXPECT_EQ(e.parent, root_seq);
        break;
      case obs::TraceReason::kMouthToEar:
        saw_mouth_to_ear = true;
        EXPECT_EQ(e.parent, root_seq);
        EXPECT_EQ(e.dur_us, e.arg0) << "mouth-to-ear span duration is the latency";
        break;
      default:
        break;
    }
  }
  ASSERT_NE(root_seq, 0u);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_mouth_to_ear);

  // The spans arrive in timestamp order (satellite: globally ordered merge).
  for (size_t i = 1; i < t.spans.size(); ++i) {
    EXPECT_LE(t.spans[i - 1].t_us, t.spans[i].t_us);
  }

  // A successful StartQueue is fire-and-forget, so its trace has no reply
  // leg. The egress -> write linkage shows up on round-trip requests: walk
  // the Sync request's trace for it.
  uint64_t sync_trace = 0;
  for (const TraceEventWire& e : raw.value().events) {
    if (e.reason == static_cast<uint16_t>(obs::TraceReason::kSpanRequest) &&
        e.arg0 == static_cast<uint32_t>(Opcode::kSync)) {
      sync_trace = e.trace;
    }
  }
  ASSERT_NE(sync_trace, 0u) << "no sampled Sync root span in the ring";
  auto sync_traced = client_->GetRequestTrace(sync_trace);
  ASSERT_TRUE(sync_traced.ok());
  uint64_t sync_root = 0;
  uint64_t egress_seq = 0;
  bool saw_write = false;
  for (const TraceEventWire& e : sync_traced.value().spans) {
    switch (static_cast<obs::TraceReason>(e.reason)) {
      case obs::TraceReason::kSpanRequest:
        sync_root = e.seq;
        break;
      case obs::TraceReason::kSpanEgress:
        egress_seq = e.seq;
        EXPECT_EQ(e.parent, sync_root);
        break;
      case obs::TraceReason::kSpanWrite:
        saw_write = true;
        EXPECT_EQ(e.parent, egress_seq) << "write span must link to its enqueue";
        break;
      default:
        break;
    }
  }
  ASSERT_NE(sync_root, 0u);
  EXPECT_NE(egress_seq, 0u) << "Sync reply never produced an egress span";
  EXPECT_TRUE(saw_write);

  // The sampling counters moved, and the histogram saw the play.
  auto stats = client_->GetServerStats(false);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().trace_requests_sampled, 0u);
  EXPECT_GT(stats.value().trace_spans, 0u);
  EXPECT_EQ(stats.value().trace_sample_every, 1u);
  EXPECT_FALSE(stats.value().mouth_to_ear_us.empty());

  // trace_id 0 resolves to the most recently sampled request.
  auto newest = client_->GetRequestTrace(0);
  ASSERT_TRUE(newest.ok());
  EXPECT_NE(newest.value().trace_id, 0u);

  // max_spans truncates but keeps the trace filter.
  auto few = client_->GetRequestTrace(want, 2);
  ASSERT_TRUE(few.ok());
  EXPECT_LE(few.value().spans.size(), 2u);
  for (const TraceEventWire& e : few.value().spans) {
    EXPECT_EQ(e.trace, want);
  }
}

// GetEntityStats must rank the heavy client first (what audiotop shows) and
// attribute device frame counters to the owning connection.
TEST_F(ServerStatsTest, EntityStatsIdentifyTopClientAndDevices) {
  // client_ does real work; a second connection stays nearly idle.
  auto idle = Connect("idle-client");
  ASSERT_NE(idle, nullptr);
  ASSERT_TRUE(idle->Sync().ok());

  auto chain = toolkit_->BuildPlaybackChain();
  ResourceId sound = toolkit_->UploadSound(TestTone(200), {Encoding::kPcm16, 8000});
  ASSERT_TRUE(toolkit_->PlayAndWait(chain, sound, 30000));

  auto entities = client_->GetEntityStats(true);
  ASSERT_TRUE(entities.ok()) << entities.status().ToString();
  const EntityStatsReply& e = entities.value();
  EXPECT_EQ(e.entity_version, kEntityStatsVersion);
  ASSERT_GE(e.connections.size(), 2u);

  const ConnectionStatsWire* heavy = nullptr;
  const ConnectionStatsWire* light = nullptr;
  for (const ConnectionStatsWire& c : e.connections) {
    if (c.name == "test-client") {
      heavy = &c;
    } else if (c.name == "idle-client") {
      light = &c;
    }
  }
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  // The uploader moved far more bytes than the idler — that ordering is
  // exactly what `audioctl top` sorts by.
  EXPECT_GT(heavy->bytes_in, light->bytes_in);
  EXPECT_GT(heavy->requests, light->requests);
  EXPECT_GE(heavy->bytes_in, heavy->requests * kHeaderSize);
  EXPECT_FALSE(heavy->dispatch_us.empty());

  // The playback chain's root LOUD appears in the device table, owned by
  // this connection, with frames attributed.
  ASSERT_FALSE(e.devices.empty());
  bool found_root = false;
  for (const DeviceStatsWire& d : e.devices) {
    if (d.root == chain.loud) {
      found_root = true;
      EXPECT_GT(d.frames_produced + d.frames_consumed, 0u);
    }
  }
  EXPECT_TRUE(found_root) << "playback chain root missing from device stats";

  // include_devices = false suppresses the device table.
  auto no_devices = client_->GetEntityStats(false);
  ASSERT_TRUE(no_devices.ok());
  EXPECT_TRUE(no_devices.value().devices.empty());
  EXPECT_FALSE(no_devices.value().connections.empty());
  idle->Close();
}

TEST_F(ServerStatsTest, UptimeAndServerTimeAdvance) {
  auto a = client_->GetServerStats(false);
  ASSERT_TRUE(a.ok());
  StepMs(40);
  auto b = client_->GetServerStats(false);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value().server_time, a.value().server_time);
  EXPECT_GE(b.value().uptime_ms, a.value().uptime_ms);
  EXPECT_EQ(b.value().ticks_run, a.value().ticks_run + 2);  // 40 ms = 2 periods
}

TEST(ServerStatsTcp, StatsOverTcpConnection) {
  Board board{BoardConfig{}};
  AudioServer server(&board);
  ASSERT_TRUE(server.ListenTcp(0));
  auto client = AudioConnection::OpenTcp("127.0.0.1", server.tcp_port(), "stats-tcp");
  ASSERT_NE(client, nullptr);
  server.StepFrames(320);
  auto stats = client->GetServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().connections_total, 1u);
  EXPECT_GT(stats.value().bytes_in, 0u);
  EXPECT_EQ(stats.value().ticks_run, 2u);
  client->Close();
  server.Shutdown();
}

// The TSan target: a client hammers GetServerStats/GetServerTrace while a
// 4-thread engine ticks islands in parallel and another client plays audio.
// All snapshots happen under the big lock; this test exists to let the
// sanitizer prove that claim.
TEST(ServerStatsParallel, PollStatsWhileParallelEngineTicks) {
  BoardConfig config;
  config.speakers = 2;
  ServerOptions options;
  options.engine_threads = 4;
  Board board{config};
  AudioServer server(&board, options);

  auto [client_end, server_end] = CreatePipePair();
  server.AddConnection(std::move(server_end));
  auto player = AudioConnection::Open(std::move(client_end), "player");
  ASSERT_NE(player, nullptr);
  auto [poll_client_end, poll_server_end] = CreatePipePair();
  server.AddConnection(std::move(poll_server_end));
  auto poller = AudioConnection::Open(std::move(poll_client_end), "poller");
  ASSERT_NE(poller, nullptr);

  // Two independent playback chains => two islands per tick.
  AudioToolkit toolkit(player.get());
  std::atomic<bool> stop{false};
  toolkit.set_time_pump([&server] { server.StepFrames(160); });
  auto chain_a = toolkit.BuildPlaybackChain();
  auto chain_b = toolkit.BuildPlaybackChain();
  std::vector<Sample> tone(8000, 2000);
  ResourceId sound_a = toolkit.UploadSound(tone, {Encoding::kPcm16, 8000});
  ResourceId sound_b = toolkit.UploadSound(tone, {Encoding::kPcm16, 8000});
  player->Enqueue(chain_a.loud, {PlayCommand(chain_a.player, sound_a, 1)});
  player->Enqueue(chain_b.loud, {PlayCommand(chain_b.player, sound_b, 2)});
  player->StartQueue(chain_a.loud);
  player->StartQueue(chain_b.loud);
  ASSERT_TRUE(player->Sync().ok());

  std::thread poll_thread([&poller, &stop] {
    while (!stop.load()) {
      auto stats = poller->GetServerStats();
      ASSERT_TRUE(stats.ok());
      auto trace = poller->GetServerTrace(64);
      ASSERT_TRUE(trace.ok());
    }
  });

  // ~1.2 s of audio in 20 ms steps, parallel islands the whole way.
  for (int i = 0; i < 60; ++i) {
    server.StepFrames(160);
  }
  stop.store(true);
  poll_thread.join();

  auto stats = poller->GetServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().engine_threads, 4u);
  EXPECT_FALSE(stats.value().islands_per_tick.empty());
  EXPECT_GE(stats.value().islands_per_tick.max, 2u);
  EXPECT_FALSE(stats.value().worker_imbalance.empty());
  EXPECT_FALSE(stats.value().tick_us.empty());

  player->Close();
  poller->Close();
  server.Shutdown();
}

}  // namespace
}  // namespace aud
