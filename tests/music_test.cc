// Music-synthesizer tests: MIDI tuning, envelopes, polyphony.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/goertzel.h"
#include "src/music/note_synth.h"

namespace aud {
namespace {

constexpr uint32_t kRate = 8000;

TEST(MidiTest, StandardTuning) {
  EXPECT_DOUBLE_EQ(MidiNoteFrequency(69), 440.0);
  EXPECT_NEAR(MidiNoteFrequency(60), 261.63, 0.01);  // middle C
  EXPECT_DOUBLE_EQ(MidiNoteFrequency(81), 880.0);    // octave up
}

TEST(EnvelopeTest, AdsrStagesProgress) {
  AdsrEnvelope env({.attack_ms = 10, .decay_ms = 10, .sustain_centi = 5000,
                    .release_ms = 10},
                   kRate);
  EXPECT_FALSE(env.active());
  env.NoteOn();
  EXPECT_TRUE(env.active());

  // Attack: rises to 1.0 in ~80 samples.
  double peak = 0;
  for (int i = 0; i < 90; ++i) {
    peak = std::max(peak, env.Next());
  }
  EXPECT_NEAR(peak, 1.0, 0.02);

  // Decay to sustain.
  double level = 0;
  for (int i = 0; i < 200; ++i) {
    level = env.Next();
  }
  EXPECT_NEAR(level, 0.5, 0.02);

  // Release to idle.
  env.NoteOff();
  for (int i = 0; i < 200; ++i) {
    env.Next();
  }
  EXPECT_FALSE(env.active());
}

TEST(NoteSynthTest, RenderedNoteHasCorrectPitch) {
  NoteSynthesizer synth(kRate);
  auto note = synth.RenderNote(69, 127, 500);  // A4
  ASSERT_GT(note.size(), 4000u);
  double at_440 = GoertzelPower(std::span<const Sample>(note).subspan(400, 2048), 440, kRate);
  double at_550 = GoertzelPower(std::span<const Sample>(note).subspan(400, 2048), 550, kRate);
  EXPECT_GT(at_440, 0.01);
  EXPECT_LT(at_550, at_440 / 10);
}

TEST(NoteSynthTest, VelocityScalesLoudness) {
  NoteSynthesizer synth(kRate);
  auto loud = synth.RenderNote(69, 127, 200);
  auto soft = synth.RenderNote(69, 30, 200);
  auto energy = [](const std::vector<Sample>& s) {
    double acc = 0;
    for (Sample v : s) {
      acc += static_cast<double>(v) * v;
    }
    return acc;
  };
  EXPECT_GT(energy(loud), 4.0 * energy(soft));
}

TEST(NoteSynthTest, PolyphonyMixesNotes) {
  NoteSynthesizer synth(kRate);
  synth.NoteOn(60, 100, 400);
  synth.NoteOn(64, 100, 400);
  synth.NoteOn(67, 100, 400);  // C major triad
  EXPECT_EQ(synth.active_notes(), 3u);
  std::vector<Sample> out;
  synth.Generate(2048, &out);
  auto body = std::span<const Sample>(out).subspan(400, 1024);
  EXPECT_GT(GoertzelPower(body, MidiNoteFrequency(60), kRate), 0.001);
  EXPECT_GT(GoertzelPower(body, MidiNoteFrequency(64), kRate), 0.001);
  EXPECT_GT(GoertzelPower(body, MidiNoteFrequency(67), kRate), 0.001);
}

TEST(NoteSynthTest, NotesExpireAfterRelease) {
  NoteSynthesizer synth(kRate);
  synth.NoteOn(60, 100, 100);
  std::vector<Sample> out;
  // 100 ms sustain + 100 ms release (default envelope) < 1 s of generation.
  synth.Generate(8000, &out);
  EXPECT_TRUE(synth.idle());
}

class WaveformTest : public ::testing::TestWithParam<Waveform> {};

TEST_P(WaveformTest, AllWaveformsProduceAudio) {
  NoteSynthesizer synth(kRate);
  VoiceSettings voice;
  voice.waveform = GetParam();
  synth.SetVoice(voice);
  auto note = synth.RenderNote(69, 100, 200);
  double acc = 0;
  for (Sample s : note) {
    acc += std::abs(s);
  }
  EXPECT_GT(acc / note.size(), 500.0);
}

INSTANTIATE_TEST_SUITE_P(All, WaveformTest,
                         ::testing::Values(Waveform::kSine, Waveform::kSquare,
                                           Waveform::kSawtooth, Waveform::kTriangle));

TEST(NoteSynthTest, SquareIsLouderThanSineAtSameSettings) {
  // A square wave carries more energy than a sine at equal amplitude.
  NoteSynthesizer synth(kRate);
  auto sine = synth.RenderNote(60, 100, 300);
  VoiceSettings voice;
  voice.waveform = Waveform::kSquare;
  synth.SetVoice(voice);
  auto square = synth.RenderNote(60, 100, 300);
  auto energy = [](const std::vector<Sample>& s) {
    double acc = 0;
    for (Sample v : s) {
      acc += static_cast<double>(v) * v;
    }
    return acc / s.size();
  };
  EXPECT_GT(energy(square), energy(sine));
}

}  // namespace
}  // namespace aud
