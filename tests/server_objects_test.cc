// Protocol-object tests: resource lifecycle, id validation, wire type
// checking, sounds and the catalogue, properties, events selection, and
// asynchronous error semantics (section 4.1).

#include <gtest/gtest.h>

#include "tests/server_fixture.h"

namespace aud {
namespace {

class ObjectsTest : public ServerFixture {};

TEST_F(ObjectsTest, ConnectionSetupHandsOutIdsAndDeviceLoud) {
  EXPECT_EQ(client_->server_name(), "netaudio");
  EXPECT_NE(client_->device_loud(), kNoResource);
  ResourceId a = client_->AllocId();
  ResourceId b = client_->AllocId();
  EXPECT_NE(a, kNoResource);
  EXPECT_EQ(b, a + 1);
}

TEST_F(ObjectsTest, SecondClientGetsDisjointIdBlock) {
  auto client2 = Connect("second");
  ASSERT_NE(client2, nullptr);
  ResourceId a = client_->AllocId();
  ResourceId b = client2->AllocId();
  EXPECT_NE(a, b);
}

TEST_F(ObjectsTest, LoudTreeConstruction) {
  ResourceId root = client_->CreateLoud(kNoResource, {});
  ResourceId child = client_->CreateLoud(root, {});
  ExpectNoErrors();

  auto state = client_->QueryLoud(root);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().children, 1u);
  EXPECT_EQ(state.value().parent, kNoResource);

  auto child_state = client_->QueryLoud(child);
  ASSERT_TRUE(child_state.ok());
  EXPECT_EQ(child_state.value().parent, root);
}

TEST_F(ObjectsTest, CreateWithForeignParentFails) {
  ResourceId bogus = 0xDEAD;
  client_->CreateLoud(bogus, {});
  ExpectError(ErrorCode::kBadResource);
}

TEST_F(ObjectsTest, DeviceCreationAndQuery) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetBool(AttrTag::kAgc, true);
  ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, attrs);
  ExpectNoErrors();

  auto reply = client_->QueryDevice(recorder);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().device_class, DeviceClass::kRecorder);
  EXPECT_TRUE(reply.value().attrs.GetBool(AttrTag::kAgc));
  EXPECT_EQ(reply.value().mapped, 0);
}

TEST_F(ObjectsTest, ErrorsArriveAsynchronously) {
  // A bad request doesn't block the stream; the error is tagged with the
  // failing request's sequence (section 4.1).
  client_->DestroyLoud(0x12345);  // nonexistent
  ResourceId good = client_->CreateLoud(kNoResource, {});
  ASSERT_TRUE(client_->Sync().ok());

  AsyncError error;
  ASSERT_TRUE(client_->NextError(&error));
  EXPECT_EQ(error.error.code, ErrorCode::kBadResource);
  EXPECT_EQ(error.error.opcode, static_cast<uint16_t>(Opcode::kDestroyLoud));

  // The later request still succeeded.
  EXPECT_TRUE(client_->QueryLoud(good).ok());
}

TEST_F(ObjectsTest, WirePortValidation) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  // Player has no sink ports; wiring output->player must fail.
  client_->CreateWire(output, 0, player, 0);
  ExpectError(ErrorCode::kBadValue);
}

TEST_F(ObjectsTest, WireEncodingMismatchIsBadMatch) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList mulaw;
  mulaw.SetU32(AttrTag::kEncoding, static_cast<uint32_t>(Encoding::kMulaw8));
  AttrList adpcm;
  adpcm.SetU32(AttrTag::kEncoding, static_cast<uint32_t>(Encoding::kAdpcm4));
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, mulaw);
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, adpcm);
  // Section 5.9: "if one end can only produce 8-bit u-law and the other
  // can only take ADPCM, a protocol error will be generated."
  client_->CreateWire(player, 0, output, 0);
  ExpectError(ErrorCode::kBadMatch);
}

TEST_F(ObjectsTest, WireAcrossLoudTreesIsBadWiring) {
  ResourceId loud1 = client_->CreateLoud(kNoResource, {});
  ResourceId loud2 = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud1, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud2, DeviceClass::kOutput, {});
  client_->CreateWire(player, 0, output, 0);
  ExpectError(ErrorCode::kBadWiring);
}

TEST_F(ObjectsTest, QueryWiresSeesBothDirections) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  ResourceId wire = client_->CreateWire(player, 0, output, 0);
  ExpectNoErrors();

  auto wires = client_->QueryWires(player);
  ASSERT_TRUE(wires.ok());
  ASSERT_EQ(wires.value().wires.size(), 1u);
  EXPECT_EQ(wires.value().wires[0].id, wire);
  EXPECT_EQ(wires.value().wires[0].src_device, player);
  EXPECT_EQ(wires.value().wires[0].dst_device, output);

  auto from_output = client_->QueryWires(output);
  ASSERT_TRUE(from_output.ok());
  EXPECT_EQ(from_output.value().wires.size(), 1u);
}

TEST_F(ObjectsTest, DestroyDeviceDestroysItsWires) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(player, 0, output, 0);
  client_->DestroyDevice(player);
  ExpectNoErrors();

  auto wires = client_->QueryWires(output);
  ASSERT_TRUE(wires.ok());
  EXPECT_TRUE(wires.value().wires.empty());
}

TEST_F(ObjectsTest, DestroyLoudCascades) {
  ResourceId root = client_->CreateLoud(kNoResource, {});
  ResourceId child = client_->CreateLoud(root, {});
  ResourceId device = client_->CreateDevice(child, DeviceClass::kPlayer, {});
  client_->DestroyLoud(root);
  Flush();
  // Everything is gone: queries now error.
  EXPECT_FALSE(client_->QueryLoud(child).ok());
  EXPECT_FALSE(client_->QueryDevice(device).ok());
  // Drain the expected errors from the failed queries.
  AsyncError e;
  while (client_->NextError(&e)) {
  }
}

TEST_F(ObjectsTest, SoundWriteReadRoundTrip) {
  ResourceId sound = client_->CreateSound({Encoding::kPcm16, 8000});
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6};
  client_->WriteSound(sound, 0, data);
  ExpectNoErrors();

  auto info = client_->QuerySound(sound);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size_bytes, 6u);
  EXPECT_EQ(info.value().samples, 3u);  // 16-bit

  auto read = client_->ReadSound(sound, 2, 2);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (std::vector<uint8_t>{3, 4}));
}

TEST_F(ObjectsTest, SoundWriteAtOffsetZeroFillsGap) {
  ResourceId sound = client_->CreateSound(kTelephoneFormat);
  std::vector<uint8_t> data = {9};
  client_->WriteSound(sound, 10, data);
  Flush();
  auto read = client_->ReadSound(sound, 0, 11);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 11u);
  EXPECT_EQ(read.value()[0], 0);
  EXPECT_EQ(read.value()[10], 9);
}

TEST_F(ObjectsTest, CatalogueListsSeededSounds) {
  auto catalogue = client_->ListCatalogue();
  ASSERT_TRUE(catalogue.ok());
  bool has_beep = false;
  for (const auto& entry : catalogue.value().entries) {
    if (entry.name == "beep") {
      has_beep = true;
      EXPECT_GT(entry.size_bytes, 0u);
    }
  }
  EXPECT_TRUE(has_beep);
}

TEST_F(ObjectsTest, CatalogueSaveThenLoad) {
  ResourceId sound = client_->CreateSound(kTelephoneFormat);
  std::vector<uint8_t> data(100, 42);
  client_->WriteSound(sound, 0, data);
  client_->SaveCatalogueSound(sound, "greeting");
  ExpectNoErrors();

  ResourceId loaded = client_->LoadCatalogueSound("greeting");
  Flush();
  auto read = client_->ReadSound(loaded, 0, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data);
}

TEST_F(ObjectsTest, LoadUnknownCatalogueNameIsBadName) {
  client_->LoadCatalogueSound("no-such-sound");
  ExpectError(ErrorCode::kBadName);
}

TEST_F(ObjectsTest, PropertiesRoundTripAndNotify) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->SelectEvents(loud, kPropertyEvents);
  std::vector<uint8_t> value = {'d', 'e', 's', 'k'};
  client_->ChangeProperty(loud, "DOMAIN", "STRING", value);
  Flush();

  auto got = client_->GetProperty(loud, "DOMAIN");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().found, 1);
  EXPECT_EQ(got.value().type, "STRING");
  EXPECT_EQ(got.value().value, value);

  auto names = client_->ListProperties(loud);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().names, std::vector<std::string>{"DOMAIN"});

  // PropertyNotify was delivered.
  EventMessage event;
  bool notified = false;
  while (client_->PollEvent(&event)) {
    if (event.type == EventType::kPropertyNotify) {
      notified = PropertyNotifyArgs::Decode(event.args).name == "DOMAIN";
    }
  }
  EXPECT_TRUE(notified);

  client_->DeleteProperty(loud, "DOMAIN");
  Flush();
  auto gone = client_->GetProperty(loud, "DOMAIN");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().found, 0);
}

TEST_F(ObjectsTest, DeviceLoudDescribesBoard) {
  auto reply = client_->QueryDeviceLoud();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().root, client_->device_loud());
  ASSERT_EQ(reply.value().devices.size(), 3u);  // speaker, mic, phone
  bool has_phone = false;
  for (const auto& dev : reply.value().devices) {
    if (dev.device_class == DeviceClass::kTelephone) {
      has_phone = true;
      EXPECT_EQ(dev.attrs.GetString(AttrTag::kPhoneNumber), "555-0100");
    }
  }
  EXPECT_TRUE(has_phone);
}

TEST_F(ObjectsTest, DisconnectDestroysClientObjects) {
  auto client2 = Connect("doomed");
  ASSERT_NE(client2, nullptr);
  AudioToolkit toolkit2(client2.get());
  toolkit2.set_time_pump([this] { server_->StepFrames(160); });
  auto chain = toolkit2.BuildPlaybackChain();
  ASSERT_TRUE(client2->Sync().ok());

  size_t before;
  {
    MutexLock lock(&server_->mutex());
    before = server_->state().object_count();
  }
  client2->Close();
  // Wait until the server reaped the connection's objects.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    MutexLock lock(&server_->mutex());
    if (server_->state().object_count() < before) {
      break;
    }
  }
  MutexLock lock(&server_->mutex());
  EXPECT_LT(server_->state().object_count(), before);
  // The mapped LOUD left the active stack.
  for (Loud* loud : server_->state().active_stack()) {
    EXPECT_NE(loud->id(), chain.loud);
  }
}

TEST_F(ObjectsTest, ImmediateQueuedOnlyCommandRejected) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId sound = client_->LoadCatalogueSound("beep");
  client_->Immediate(loud, PlayCommand(player, sound));
  ExpectError(ErrorCode::kBadValue);
}

TEST_F(ObjectsTest, UnknownOpcodeIsBadRequest) {
  client_->SendRequest(static_cast<Opcode>(999), {});
  ExpectError(ErrorCode::kBadRequest);
}

TEST_F(ObjectsTest, GetServerTimeAdvancesWithEngine) {
  auto t0 = client_->GetServerTime();
  ASSERT_TRUE(t0.ok());
  StepMs(500);
  auto t1 = client_->GetServerTime();
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1.value() - t0.value(), 500 * kTicksPerMillisecond);
}

}  // namespace
}  // namespace aud
