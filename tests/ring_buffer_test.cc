// SPSC ring buffer (src/common/ring_buffer.h): the lock-free data path
// under every wire and CODEC ring the epoch fan-out touches without the
// state lock, so its single-producer/single-consumer contract is what
// keeps the engine data plane race-free.
//
// Covered here: capacity rounding, short writes/reads at the boundary,
// index wraparound past the power-of-two mask, Discard/Clear, the
// monotonic total counters, and a 2-thread producer/consumer stress that
// checks every element arrives intact and in order (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/ring_buffer.h"

namespace aud {
namespace {

TEST(RingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingBuffer<int>(1).capacity(), 1u);
  EXPECT_EQ(RingBuffer<int>(2).capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>(3).capacity(), 4u);
  EXPECT_EQ(RingBuffer<int>(160).capacity(), 256u);
  EXPECT_EQ(RingBuffer<int>(1024).capacity(), 1024u);
}

TEST(RingBufferTest, WriteReadRoundTrip) {
  RingBuffer<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.free_space(), 8u);

  const std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(ring.Write(in), 5u);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.free_space(), 3u);
  EXPECT_FALSE(ring.empty());
  EXPECT_FALSE(ring.full());

  std::vector<int> out(5);
  EXPECT_EQ(ring.Read(out), 5u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, WriteIsShortWhenFull) {
  RingBuffer<int> ring(4);
  const std::vector<int> in = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.Write(in), 4u);  // only capacity fits
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.Write(in), 0u);  // completely full: nothing written

  std::vector<int> out(2);
  EXPECT_EQ(ring.Read(out), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(ring.Write(in), 2u);  // the freed room, no more
  EXPECT_TRUE(ring.full());
}

TEST(RingBufferTest, ReadIsShortWhenDrained) {
  RingBuffer<int> ring(8);
  const std::vector<int> in = {7, 8, 9};
  ASSERT_EQ(ring.Write(in), 3u);

  std::vector<int> out(8, -1);
  EXPECT_EQ(ring.Read(out), 3u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(out[3], -1);  // untouched past the available elements
  EXPECT_EQ(ring.Read(out), 0u);
}

// Interleaved writes/reads push the indices far past the mask: the
// modular indexing must keep element order across many wraps.
TEST(RingBufferTest, WraparoundKeepsOrder) {
  RingBuffer<uint32_t> ring(16);
  uint32_t next_in = 0;
  uint32_t next_out = 0;
  // 7 and 5 are coprime with 16, so every offset within the ring is hit.
  std::vector<uint32_t> chunk;
  std::vector<uint32_t> out(5);
  for (int round = 0; round < 1000; ++round) {
    chunk.clear();
    for (int i = 0; i < 7; ++i) {
      chunk.push_back(next_in + static_cast<uint32_t>(i));
    }
    next_in += static_cast<uint32_t>(ring.Write(chunk));
    size_t got = ring.Read(out);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], next_out + static_cast<uint32_t>(i)) << "round " << round;
    }
    next_out += static_cast<uint32_t>(got);
  }
  // Drain the tail.
  size_t got;
  while ((got = ring.Read(out)) > 0) {
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], next_out + static_cast<uint32_t>(i));
    }
    next_out += static_cast<uint32_t>(got);
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_GT(ring.total_written(), 16u);  // really wrapped, many times
}

TEST(RingBufferTest, DiscardDropsOldestAndClampsToAvailable) {
  RingBuffer<int> ring(8);
  const std::vector<int> in = {1, 2, 3, 4, 5};
  ASSERT_EQ(ring.Write(in), 5u);

  EXPECT_EQ(ring.Discard(2), 2u);
  EXPECT_EQ(ring.size(), 3u);
  std::vector<int> out(1);
  ASSERT_EQ(ring.Read(out), 1u);
  EXPECT_EQ(out[0], 3);  // 1 and 2 were discarded

  EXPECT_EQ(ring.Discard(100), 2u);  // clamps to what is left
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Discard(1), 0u);
}

TEST(RingBufferTest, ClearEmptiesButKeepsTotals) {
  RingBuffer<int> ring(8);
  const std::vector<int> in = {1, 2, 3};
  ASSERT_EQ(ring.Write(in), 3u);
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.free_space(), 8u);
  // The counters stay monotonic across Clear: sample accounting must not
  // go backwards when a queue flush empties a wire.
  EXPECT_EQ(ring.total_written(), 3u);
  EXPECT_EQ(ring.total_read(), 3u);

  ASSERT_EQ(ring.Write(in), 3u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_written(), 6u);
}

TEST(RingBufferTest, TotalsCountAcrossWraps) {
  RingBuffer<int> ring(4);
  const std::vector<int> in = {0, 1, 2, 3};
  std::vector<int> out(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(ring.Write(in), 4u);
    ASSERT_EQ(ring.Read(out), 4u);
  }
  EXPECT_EQ(ring.total_written(), 40u);
  EXPECT_EQ(ring.total_read(), 40u);
}

// One producer, one consumer, a ring much smaller than the stream: every
// element must arrive exactly once, in order, with no torn values. TSan
// (this suite runs in the TSan CI lane) checks the acquire/release
// discipline; the sequence check catches lost or duplicated slots.
TEST(RingBufferStressTest, TwoThreadStreamKeepsOrderAndCount) {
  constexpr uint64_t kTotal = 200000;
  RingBuffer<uint64_t> ring(64);

  std::thread producer([&ring] {
    uint64_t next = 0;
    std::vector<uint64_t> chunk;
    while (next < kTotal) {
      chunk.clear();
      uint64_t n = std::min<uint64_t>(kTotal - next, 1 + next % 13);
      for (uint64_t i = 0; i < n; ++i) {
        chunk.push_back(next + i);
      }
      size_t wrote = ring.Write(chunk);
      next += wrote;
      if (wrote == 0) {
        std::this_thread::yield();
      }
    }
  });

  uint64_t expected = 0;
  uint64_t checksum = 0;
  std::vector<uint64_t> out(17);
  while (expected < kTotal) {
    size_t got = ring.Read(out);
    if (got == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], expected) << "stream out of order";
      checksum += out[i];
      ++expected;
    }
  }
  producer.join();

  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.total_written(), kTotal);
  EXPECT_EQ(ring.total_read(), kTotal);
  EXPECT_EQ(checksum, kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace aud
