// Active-stack and activation tests (sections 5.3, 5.4, 5.8): mapping,
// attribute matching, augmentation, telephone exclusivity, exclusive
// ambient domains, preemption with server-paused queues, and redirection.

#include <gtest/gtest.h>

#include "tests/server_fixture.h"

namespace aud {
namespace {

class ActivationTest : public ServerFixture {};

TEST_F(ActivationTest, MapActivatesAndBindsByClass) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->SelectEvents(loud, kLifecycleEvents);
  client_->MapLoud(loud);
  Flush();

  auto reply = client_->QueryDevice(output);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().active, 1);
  EXPECT_NE(reply.value().bound_device, kNoResource);
  // Matched hardware attributes are visible (section 5.3).
  EXPECT_EQ(reply.value().attrs.GetString(AttrTag::kName), "speaker0");

  bool activated = false;
  EventMessage event;
  while (client_->PollEvent(&event)) {
    if (event.type == EventType::kActivateNotify) {
      activated = true;
    }
  }
  EXPECT_TRUE(activated);
}

TEST_F(ActivationTest, TightAttributeSelectsSpecificSpeaker) {
  Init(BoardConfig{.speakers = 2});
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetString(AttrTag::kPosition, "right");  // "give me the left speaker"-style
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, attrs);
  client_->MapLoud(loud);
  Flush();

  auto reply = client_->QueryDevice(output);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().active, 1);
  EXPECT_EQ(reply.value().attrs.GetString(AttrTag::kName), "speaker1");
}

TEST_F(ActivationTest, ImpossibleAttributesLeaveLoudInactive) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetString(AttrTag::kName, "no-such-device");
  client_->CreateDevice(loud, DeviceClass::kOutput, attrs);
  client_->MapLoud(loud);
  Flush();
  auto state = client_->QueryLoud(loud);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().mapped, 1);
  EXPECT_EQ(state.value().active, 0);
}

TEST_F(ActivationTest, AugmentPinsDeviceAcrossRemap) {
  // Section 5.3: query the selected device id, augment the vdev with it.
  Init(BoardConfig{.speakers = 2});
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->MapLoud(loud);
  Flush();
  auto reply = client_->QueryDevice(output);
  ASSERT_TRUE(reply.ok());
  ResourceId chosen = reply.value().bound_device;
  ASSERT_NE(chosen, kNoResource);

  AttrList pin;
  pin.SetU32(AttrTag::kDeviceId, chosen);
  client_->AugmentDevice(output, pin);
  client_->UnmapLoud(loud);
  client_->MapLoud(loud);
  Flush();
  auto reply2 = client_->QueryDevice(output);
  ASSERT_TRUE(reply2.ok());
  EXPECT_EQ(reply2.value().bound_device, chosen);
}

TEST_F(ActivationTest, TelephoneIsExclusive) {
  // Two LOUDs both wanting the single phone line: only the top activates.
  ResourceId loud1 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud1, DeviceClass::kTelephone, {});
  ResourceId loud2 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud2, DeviceClass::kTelephone, {});
  client_->SelectEvents(loud1, kLifecycleEvents);
  client_->SelectEvents(loud2, kLifecycleEvents);

  client_->MapLoud(loud1);
  client_->MapLoud(loud2);  // mapped later: goes on top
  Flush();

  auto s1 = client_->QueryLoud(loud1);
  auto s2 = client_->QueryLoud(loud2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().active, 1) << "top of stack gets the line";
  EXPECT_EQ(s1.value().active, 0) << "lower LOUD is denied the line";

  // Raising loud1 preempts loud2.
  client_->RaiseLoud(loud1);
  Flush();
  s1 = client_->QueryLoud(loud1);
  s2 = client_->QueryLoud(loud2);
  EXPECT_EQ(s1.value().active, 1);
  EXPECT_EQ(s2.value().active, 0);
}

TEST_F(ActivationTest, SpeakersShareByDefault) {
  ResourceId loud1 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud1, DeviceClass::kOutput, {});
  ResourceId loud2 = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud2, DeviceClass::kOutput, {});
  client_->MapLoud(loud1);
  client_->MapLoud(loud2);
  Flush();
  EXPECT_EQ(client_->QueryLoud(loud1).value().active, 1);
  EXPECT_EQ(client_->QueryLoud(loud2).value().active, 1);
}

TEST_F(ActivationTest, ExclusiveInputPreemptsSameDomainInputs) {
  // Section 5.8: activating a microphone with exclusive input excludes
  // other inputs in the desktop domain, but not outputs.
  ResourceId listener = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(listener, DeviceClass::kInput, {});
  ResourceId speaker_loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(speaker_loud, DeviceClass::kOutput, {});
  client_->MapLoud(listener);
  client_->MapLoud(speaker_loud);
  Flush();
  EXPECT_EQ(client_->QueryLoud(listener).value().active, 1);

  ResourceId exclusive = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetBool(AttrTag::kExclusiveInput, true);
  client_->CreateDevice(exclusive, DeviceClass::kInput, attrs);
  client_->MapLoud(exclusive);  // top of stack
  Flush();

  EXPECT_EQ(client_->QueryLoud(exclusive).value().active, 1);
  EXPECT_EQ(client_->QueryLoud(listener).value().active, 0)
      << "plain input in the same ambient domain must be preempted";
  EXPECT_EQ(client_->QueryLoud(speaker_loud).value().active, 1)
      << "outputs are unaffected by exclusive *input*";

  // Unmapping the exclusive LOUD reactivates the listener.
  client_->UnmapLoud(exclusive);
  Flush();
  EXPECT_EQ(client_->QueryLoud(listener).value().active, 1);
}

TEST_F(ActivationTest, ExclusiveOutputPreemptsSameDomainOutputs) {
  ResourceId background = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(background, DeviceClass::kOutput, {});
  client_->MapLoud(background);
  Flush();

  ResourceId urgent = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetBool(AttrTag::kExclusiveOutput, true);
  client_->CreateDevice(urgent, DeviceClass::kOutput, attrs);
  client_->MapLoud(urgent);
  Flush();
  EXPECT_EQ(client_->QueryLoud(urgent).value().active, 1);
  EXPECT_EQ(client_->QueryLoud(background).value().active, 0);
}

TEST_F(ActivationTest, PhoneDomainDoesNotInterfereWithDesktop) {
  // A phone-line LOUD and an exclusive-output desktop LOUD coexist: they
  // are different ambient domains (section 5.8).
  ResourceId phone_loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(phone_loud, DeviceClass::kTelephone, {});
  client_->MapLoud(phone_loud);

  ResourceId desktop = client_->CreateLoud(kNoResource, {});
  AttrList attrs;
  attrs.SetBool(AttrTag::kExclusiveOutput, true);
  client_->CreateDevice(desktop, DeviceClass::kOutput, attrs);
  client_->MapLoud(desktop);
  Flush();
  EXPECT_EQ(client_->QueryLoud(phone_loud).value().active, 1);
  EXPECT_EQ(client_->QueryLoud(desktop).value().active, 1);
}

TEST_F(ActivationTest, DeactivationServerPausesQueueAndResumesOnReactivation) {
  board_->speakers()[0]->set_capture_output(true);

  // Lower LOUD playing a long sound through the phone line (exclusive), a
  // higher LOUD steals the line, then releases it.
  ResourceId victim = client_->CreateLoud(kNoResource, {});
  ResourceId phone1 = client_->CreateDevice(victim, DeviceClass::kTelephone, {});
  ResourceId player1 = client_->CreateDevice(victim, DeviceClass::kPlayer, {});
  client_->CreateWire(player1, 0, phone1, 0);
  client_->SelectEvents(victim, kQueueEvents | kLifecycleEvents);
  client_->MapLoud(victim);

  std::vector<Sample> pcm(8000, 1000);  // 1 s
  ResourceId sound = toolkit_->UploadSound(pcm, {Encoding::kPcm16, 8000});
  client_->Enqueue(victim, {PlayCommand(player1, sound, 1)});
  client_->StartQueue(victim);
  Flush();
  StepMs(200);

  // Preempt.
  ResourceId thief = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(thief, DeviceClass::kTelephone, {});
  client_->MapLoud(thief);
  Flush();
  EXPECT_EQ(client_->QueryLoud(victim).value().active, 0);
  auto queue_state = client_->QueryQueue(victim);
  ASSERT_TRUE(queue_state.ok());
  EXPECT_EQ(queue_state.value().state, QueueState::kServerPaused);

  // Paused event carried the server-initiated flag.
  auto paused = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kQueuePaused; }, 5000);
  ASSERT_TRUE(paused.has_value());
  EXPECT_EQ(QueuePausedArgs::Decode(paused->args).server_paused, 1);

  // Release: unmap the thief. The victim auto-resumes (section 5.5).
  client_->UnmapLoud(thief);
  Flush();
  EXPECT_EQ(client_->QueryLoud(victim).value().active, 1);
  EXPECT_EQ(client_->QueryQueue(victim).value().state, QueueState::kStarted);
  EXPECT_TRUE(toolkit_->WaitCommandDone(1, 30000));
}

TEST_F(ActivationTest, ActiveStackQueryShowsOrder) {
  ResourceId a = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(a, DeviceClass::kOutput, {});
  ResourceId b = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(b, DeviceClass::kOutput, {});
  client_->MapLoud(a);
  client_->MapLoud(b);
  Flush();
  auto stack = client_->QueryActiveStack();
  ASSERT_TRUE(stack.ok());
  ASSERT_EQ(stack.value().entries.size(), 2u);
  EXPECT_EQ(stack.value().entries[0].loud, b);  // most recent on top
  EXPECT_EQ(stack.value().entries[1].loud, a);

  client_->LowerLoud(b);
  Flush();
  stack = client_->QueryActiveStack();
  EXPECT_EQ(stack.value().entries[0].loud, a);
}

TEST_F(ActivationTest, RedirectionSendsMapRequestToManager) {
  auto manager_conn = Connect("audio-manager");
  ASSERT_NE(manager_conn, nullptr);
  manager_conn->SetRedirect(true);
  ASSERT_TRUE(manager_conn->Sync().ok());

  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->MapLoud(loud);  // redirected, not performed
  Flush();
  EXPECT_EQ(client_->QueryLoud(loud).value().mapped, 0);

  EventMessage event;
  ASSERT_TRUE(manager_conn->WaitEvent(&event, 2000));
  EXPECT_EQ(event.type, EventType::kMapRequest);
  EXPECT_EQ(MapRequestArgs::Decode(event.args).loud, loud);

  // The manager performs the map on the app's behalf.
  manager_conn->MapLoud(loud, /*override_redirect=*/true);
  ASSERT_TRUE(manager_conn->Sync().ok());
  EXPECT_EQ(client_->QueryLoud(loud).value().mapped, 1);
}

TEST_F(ActivationTest, SecondRedirectClaimRejected) {
  auto manager1 = Connect("manager1");
  auto manager2 = Connect("manager2");
  manager1->SetRedirect(true);
  ASSERT_TRUE(manager1->Sync().ok());
  manager2->SetRedirect(true);
  ASSERT_TRUE(manager2->Sync().ok());
  AsyncError error;
  ASSERT_TRUE(manager2->NextError(&error));
  EXPECT_EQ(error.error.code, ErrorCode::kDeviceBusy);
}

TEST_F(ActivationTest, ManagerDisconnectReleasesRedirect) {
  auto manager = Connect("manager");
  manager->SetRedirect(true);
  ASSERT_TRUE(manager->Sync().ok());
  manager->Close();
  // Wait for teardown.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    MutexLock lock(&server_->mutex());
    if (!server_->state().redirect_conn().has_value()) {
      break;
    }
  }
  // Mapping works again without redirection.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->MapLoud(loud);
  Flush();
  EXPECT_EQ(client_->QueryLoud(loud).value().mapped, 1);
}

}  // namespace
}  // namespace aud
