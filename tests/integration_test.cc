// Full-stack integration tests: TCP transport end to end, concurrent
// clients over sockets, a client holding connections to multiple servers
// (section 4.1: "a client can have multiple connections to one or more
// audio servers"), and moving audio data between servers — the paper's
// "move audio between applications and transmit it between sites".

#include <gtest/gtest.h>

#include "tests/server_fixture.h"

namespace aud {
namespace {

class TcpIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    board_ = std::make_unique<Board>(BoardConfig{});
    server_ = std::make_unique<AudioServer>(board_.get());
    ASSERT_TRUE(server_->ListenTcp(0));
    server_->StartRealtime();
  }

  void TearDown() override { server_->Shutdown(); }

  std::unique_ptr<AudioConnection> Connect(const std::string& name) {
    return AudioConnection::OpenTcp("127.0.0.1", server_->tcp_port(), name);
  }

  std::unique_ptr<Board> board_;
  std::unique_ptr<AudioServer> server_;
};

TEST_F(TcpIntegrationTest, SetupOverTcp) {
  auto client = Connect("tcp-client");
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->server_name(), "netaudio");
  EXPECT_TRUE(client->Sync().ok());
}

TEST_F(TcpIntegrationTest, RealtimePlaybackOverTcp) {
  auto client = Connect("tcp-player");
  ASSERT_NE(client, nullptr);
  AudioToolkit toolkit(client.get());  // real time: default pump sleeps

  std::vector<Sample> pcm(1600, 6000);  // 200 ms
  ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
  auto chain = toolkit.BuildPlaybackChain();
  EXPECT_TRUE(toolkit.PlayAndWait(chain, sound, 10000));
}

TEST_F(TcpIntegrationTest, ManyConcurrentTcpClients) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = Connect("worker-" + std::to_string(i));
      if (client == nullptr) {
        return;
      }
      AudioToolkit toolkit(client.get());
      std::vector<Sample> pcm(800, static_cast<Sample>(100 * (i + 1)));
      ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
      auto chain = toolkit.BuildPlaybackChain();
      if (toolkit.PlayAndWait(chain, sound, 15000)) {
        successes.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(successes.load(), kClients);
  // All clients have disconnected; the server survived the churn and still
  // accepts new work.
  auto after = Connect("post-churn");
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->Sync().ok());
}

TEST_F(TcpIntegrationTest, ProtocolVersionMismatchRefused) {
  auto stream = ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_NE(stream, nullptr);
  SetupRequest request;
  request.major = 99;
  ByteWriter w;
  request.Encode(&w);
  ASSERT_TRUE(WriteMessage(stream.get(), MessageType::kRequest, kSetupOpcode, 0, w.bytes()));
  auto reply = ReadMessage(stream.get());
  ASSERT_TRUE(reply.has_value());
  ByteReader r(reply->payload);
  SetupReply setup = SetupReply::Decode(&r);
  EXPECT_EQ(setup.success, 0);
  EXPECT_FALSE(setup.reason.empty());
}

TEST_F(TcpIntegrationTest, GarbageSetupDisconnectsCleanly) {
  auto stream = ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_NE(stream, nullptr);
  std::vector<uint8_t> garbage(64, 0xAB);
  stream->Write(garbage);
  // The server either refuses via a reply or closes; it must not crash,
  // and new connections still work.
  auto client = Connect("after-garbage");
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Sync().ok());
}

TEST(MultiServerTest, OneClientTwoServers) {
  // Two workstations, each with its own server; one application connects
  // to both and copies a sound from server A to server B.
  Board board_a({.number_prefix = "555-01"});
  Board board_b({.number_prefix = "555-02"});
  AudioServer server_a(&board_a);
  AudioServer server_b(&board_b);
  ASSERT_TRUE(server_a.ListenTcp(0));
  ASSERT_TRUE(server_b.ListenTcp(0));
  server_a.StartRealtime();
  server_b.StartRealtime();

  auto conn_a = AudioConnection::OpenTcp("127.0.0.1", server_a.tcp_port(), "bridge");
  auto conn_b = AudioConnection::OpenTcp("127.0.0.1", server_b.tcp_port(), "bridge");
  ASSERT_NE(conn_a, nullptr);
  ASSERT_NE(conn_b, nullptr);

  // A sound exists only in server A's catalogue.
  AudioToolkit toolkit_a(conn_a.get());
  AudioToolkit toolkit_b(conn_b.get());
  std::vector<Sample> pcm(1000, 4242);
  ResourceId original = toolkit_a.UploadSound(pcm, {Encoding::kPcm16, 8000});
  conn_a->SaveCatalogueSound(original, "site-a-sound");
  ASSERT_TRUE(conn_a->Sync().ok());

  // Transfer: read from A, write to B ("transmit it between sites").
  ResourceId loaded = conn_a->LoadCatalogueSound("site-a-sound");
  ASSERT_TRUE(conn_a->Sync().ok());
  auto data = toolkit_a.DownloadSound(loaded);
  ASSERT_TRUE(data.ok());
  ResourceId copy = toolkit_b.UploadSound(data.value(), {Encoding::kPcm16, 8000});

  // And play it on workstation B.
  auto chain = toolkit_b.BuildPlaybackChain();
  EXPECT_TRUE(toolkit_b.PlayAndWait(chain, copy, 10000));

  server_a.Shutdown();
  server_b.Shutdown();
}

}  // namespace
}  // namespace aud
