// Tests for runtime lock-rank enforcement (src/common/lock_rank.h): the
// machinery that turns the DESIGN.md lock table into an executed invariant.
// Death tests prove the checker actually aborts on the violation classes it
// exists for — out-of-order acquisition, same-rank collisions outside the
// IslandRootLocks carve-out, and recursion — and positive tests prove the
// legal shapes (ascending chains, ascending-id same-rank, out-of-LIFO
// release, unranked test mutexes) pass through unharmed.

#include "src/common/lock_rank.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/thread_annotations.h"

namespace aud {
namespace {

#if AUD_LOCK_RANK_CHECKS

TEST(LockRankTest, AscendingChainIsAccepted) {
  Mutex big(LockRank::kServerState, "test_big");
  Mutex engine(LockRank::kEngineRoot, "test_engine");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  Mutex ring(LockRank::kTraceRing, "test_ring");
  Mutex log(LockRank::kLogging, "test_log");

  MutexLock l0(&big);
  MutexLock l1(&engine);
  MutexLock l2(&egress);
  MutexLock l3(&ring);
  MutexLock l4(&log);
  EXPECT_EQ(lockrank::HeldCount(), 5);
}

TEST(LockRankTest, HeldCountDrainsOnRelease) {
  Mutex big(LockRank::kServerState, "test_big");
  {
    MutexLock lock(&big);
    EXPECT_EQ(lockrank::HeldCount(), 1);
  }
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankTest, SkippingRanksIsAccepted) {
  // Strictly ascending, not dense: 0 -> 2 -> 7 is legal.
  Mutex big(LockRank::kServerState, "test_big");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  Mutex log(LockRank::kLogging, "test_log");

  MutexLock l0(&big);
  MutexLock l1(&egress);
  MutexLock l2(&log);
  EXPECT_EQ(lockrank::HeldCount(), 3);
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex big(LockRank::kServerState, "test_big");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  EXPECT_DEATH(
      {
        MutexLock outer(&egress);
        MutexLock inner(&big);  // rank 2 -> rank 0: descending
      },
      "out-of-order acquisition.*test_big.*rank 0.*holding.*test_egress.*rank 2");
}

TEST(LockRankDeathTest, OutOfOrderTryLockAborts) {
  // A try_lock that would succeed is the same latent deadlock; the checker
  // must not give it a pass just because it won the race.
  Mutex big(LockRank::kServerState, "test_big");
  Mutex pool(LockRank::kEnginePool, "test_pool");
  EXPECT_DEATH(
      {
        MutexLock outer(&pool);
        big.TryLock();
      },
      "out-of-order acquisition.*test_big");
}

TEST(LockRankDeathTest, SameRankOutsideCarveOutAborts) {
  // kEnginePool and kEgressQueue share rank 2 precisely because they must
  // never be held together (DESIGN.md lock table).
  Mutex pool(LockRank::kEnginePool, "test_pool");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  EXPECT_DEATH(
      {
        MutexLock outer(&pool);
        MutexLock inner(&egress);
      },
      "out-of-order acquisition.*test_egress.*rank 2.*holding.*test_pool.*rank 2");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  Mutex big(LockRank::kServerState, "test_big");
  EXPECT_DEATH(
      {
        MutexLock outer(&big);
        big.Lock();
      },
      "recursive acquisition.*test_big");
}

TEST(LockRankTest, EngineRootAscendingIdIsAccepted) {
  // The IslandRootLocks shape: multiple kEngineRoot locks taken at the same
  // rank in ascending order-key (LOUD id) order.
  Mutex root3(LockRank::kEngineRoot, "test_root3");
  Mutex root7(LockRank::kEngineRoot, "test_root7");
  Mutex root9(LockRank::kEngineRoot, "test_root9");
  root3.SetRankOrder(3);
  root7.SetRankOrder(7);
  root9.SetRankOrder(9);

  MutexLock l0(&root3);
  MutexLock l1(&root7);
  MutexLock l2(&root9);
  EXPECT_EQ(lockrank::HeldCount(), 3);
}

TEST(LockRankTest, HeldStackGrowsPastInlineCapacity) {
  // The serial engine's pseudo-island holds every active root's engine lock
  // at once, so the held stack must scale with the client count (a capacity-
  // ladder step holds thousands). Past the inline window the checker grows
  // into heap storage and keeps enforcing: the monotonic check still rejects
  // both descending order and re-acquisition.
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "TSan's deadlock detector caps at 64 held mutexes";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "TSan's deadlock detector caps at 64 held mutexes";
#endif
#endif
  constexpr int kRoots = 200;
  std::vector<std::unique_ptr<Mutex>> roots;
  roots.reserve(kRoots);
  for (int i = 0; i < kRoots; ++i) {
    roots.push_back(std::make_unique<Mutex>(LockRank::kEngineRoot, "test_root"));
    roots.back()->SetRankOrder(static_cast<uint64_t>(i + 1));
    roots.back()->Lock();
  }
  EXPECT_EQ(lockrank::HeldCount(), kRoots);

  Mutex low(LockRank::kEngineRoot, "test_low");
  low.SetRankOrder(1);
  EXPECT_DEATH({ low.Lock(); }, "out-of-order acquisition.*test_low");
  // Re-acquiring the top presents its own (rank, order), which cannot beat
  // itself: recursion is still caught past the inline window.
  EXPECT_DEATH({ roots.back()->Lock(); }, "out-of-order acquisition.*test_root");

  for (int i = kRoots - 1; i >= 0; --i) {
    roots[static_cast<size_t>(i)]->Unlock();  // the IslandRootLocks LIFO shape
  }
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankDeathTest, EngineRootDescendingIdAborts) {
  Mutex root3(LockRank::kEngineRoot, "test_root3");
  Mutex root7(LockRank::kEngineRoot, "test_root7");
  root3.SetRankOrder(3);
  root7.SetRankOrder(7);
  EXPECT_DEATH(
      {
        MutexLock outer(&root7);
        MutexLock inner(&root3);  // same rank, descending id
      },
      "out-of-order acquisition.*test_root3.*order 3.*holding.*test_root7.*order 7");
}

TEST(LockRankDeathTest, EngineRootEqualOrderAborts) {
  // Two roots with the same order key cannot establish an order at all —
  // the ascending-id carve-out is strict.
  Mutex a(LockRank::kEngineRoot, "test_root_a");
  Mutex b(LockRank::kEngineRoot, "test_root_b");
  a.SetRankOrder(5);
  b.SetRankOrder(5);
  EXPECT_DEATH(
      {
        MutexLock outer(&a);
        MutexLock inner(&b);
      },
      "out-of-order acquisition.*test_root_b");
}

TEST(LockRankTest, OutOfLifoReleaseKeepsStackCoherent) {
  // Release the outer lock first (the MutexLock temporary-release pattern),
  // then prove the checker still validates against what is actually held.
  Mutex big(LockRank::kServerState, "test_big");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  Mutex log(LockRank::kLogging, "test_log");

  big.Lock();
  egress.Lock();
  big.Unlock();  // mid-stack release
  EXPECT_EQ(lockrank::HeldCount(), 1);
  {
    MutexLock l(&log);  // rank 7 over held rank 2: legal
    EXPECT_EQ(lockrank::HeldCount(), 2);
  }
  egress.Unlock();
  EXPECT_EQ(lockrank::HeldCount(), 0);
}

TEST(LockRankDeathTest, MidStackReleaseDoesNotLaunderOrder) {
  // After releasing the rank-0 lock, the rank-2 lock is still held, so a
  // rank-1 acquisition must still abort.
  Mutex big(LockRank::kServerState, "test_big");
  Mutex egress(LockRank::kEgressQueue, "test_egress");
  Mutex engine(LockRank::kEngineRoot, "test_engine");
  EXPECT_DEATH(
      {
        big.Lock();
        egress.Lock();
        big.Unlock();
        engine.Lock();  // rank 1 while rank 2 is held
      },
      "out-of-order acquisition.*test_engine");
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  // Test-local mutexes opt out of the hierarchy entirely: they can be taken
  // under or over anything without participating in the checks.
  Mutex adhoc;  // default = kUnranked
  Mutex log(LockRank::kLogging, "test_log");

  MutexLock l0(&log);
  MutexLock l1(&adhoc);
  EXPECT_EQ(lockrank::HeldCount(), 1);  // only the ranked lock is tracked

  Mutex big(LockRank::kServerState, "test_big2");
  // Held unranked lock does not forbid a "descending" ranked acquisition...
  EXPECT_DEATH(
      {
        MutexLock l2(&big);  // ...but rank 0 under held rank 7 still aborts.
      },
      "out-of-order acquisition.*test_big2");
}

TEST(LockRankTest, MutexLockTemporaryReleaseRoundTrips) {
  // The EnginePool::WorkerLoop pattern: drop the pool lock around the job,
  // take lower-ranked locks inside it, re-acquire after.
  Mutex pool(LockRank::kEnginePool, "test_pool");
  Mutex engine(LockRank::kEngineRoot, "test_engine");
  engine.SetRankOrder(1);

  MutexLock lock(&pool);
  lock.Unlock();
  EXPECT_EQ(lockrank::HeldCount(), 0);
  {
    MutexLock job(&engine);  // legal: nothing held
    EXPECT_EQ(lockrank::HeldCount(), 1);
  }
  lock.Lock();
  EXPECT_EQ(lockrank::HeldCount(), 1);
}

#else  // !AUD_LOCK_RANK_CHECKS

TEST(LockRankTest, CheckingDisabledInThisBuild) {
  GTEST_SKIP() << "built with -DAUD_LOCK_RANK=OFF";
}

#endif  // AUD_LOCK_RANK_CHECKS

}  // namespace
}  // namespace aud
