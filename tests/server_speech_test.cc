// Speech synthesizer, recognizer, music synthesizer, crossbar and DSP
// device classes exercised through the full protocol stack.

#include <gtest/gtest.h>

#include "src/dsp/gain.h"
#include "src/dsp/goertzel.h"
#include "src/synth/synthesizer.h"
#include "src/toolkit/dialogue.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

class SpeechTest : public ServerFixture {};

TEST_F(SpeechTest, SpeakTextReachesSpeaker) {
  board_->speakers()[0]->set_capture_output(true);
  ASSERT_TRUE(toolkit_->SayAndWait("hello world"));
  StepMs(200);
  size_t audible = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (std::abs(s) > 500) {
      ++audible;
    }
  }
  EXPECT_GT(audible, 1000u);
  ExpectNoErrors();
}

TEST_F(SpeechTest, SetValuesChangesSpeechDuration) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId synth = client_->CreateDevice(loud, DeviceClass::kSpeechSynthesizer, {});
  ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, {});
  client_->CreateWire(synth, 0, recorder, 0);
  client_->SelectEvents(loud, kQueueEvents | kRecorderEvents);
  client_->MapLoud(loud);

  auto speak_and_measure = [&](uint32_t rate_percent) -> uint64_t {
    ResourceId sound = client_->CreateSound({Encoding::kPcm16, 8000});
    AttrList values;
    values.SetU32(AttrTag::kSpeakingRate, rate_percent);
    client_->Enqueue(loud, {SetValuesCommand(synth, values, 1),
                            CoBeginCommand(),
                            SpeakTextCommand(synth, "testing one two three", 2),
                            RecordCommand(recorder, sound, kTerminateOnStop, 15000, 3),
                            CoEndCommand()});
    client_->StartQueue(loud);
    EXPECT_TRUE(client_->Sync().ok());
    // Wait for speech to finish, then stop the recorder.
    EXPECT_TRUE(toolkit_->WaitCommandDone(2, 30000));
    client_->Immediate(loud, StopCommand(recorder));
    EXPECT_TRUE(toolkit_->WaitCommandDone(3, 30000));
    auto info = client_->QuerySound(sound);
    EXPECT_TRUE(info.ok());
    // Count non-silent samples (speech length).
    auto data = toolkit_->DownloadSound(sound);
    EXPECT_TRUE(data.ok());
    uint64_t audible = 0;
    for (Sample s : data.value()) {
      if (std::abs(s) > 300) {
        ++audible;
      }
    }
    return audible;
  };

  uint64_t normal = speak_and_measure(100);
  uint64_t fast = speak_and_measure(200);
  EXPECT_GT(normal, fast * 3 / 2) << "faster speaking rate should shorten speech";
}

TEST_F(SpeechTest, ExceptionListAppliedThroughProtocol) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId synth = client_->CreateDevice(loud, DeviceClass::kSpeechSynthesizer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(synth, 0, output, 0);
  client_->MapLoud(loud);
  client_->Immediate(loud,
                     SetExceptionListCommand(synth, {{"ok", "OW K EY"}}));
  ExpectNoErrors();
}

TEST_F(SpeechTest, BadLanguageIsReported) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId synth = client_->CreateDevice(loud, DeviceClass::kSpeechSynthesizer, {});
  client_->Immediate(loud, SetTextLanguageCommand(synth, "xx-YY"));
  ExpectError(ErrorCode::kBadValue);
}

TEST_F(SpeechTest, RecognizerHearsMicrophoneAndReportsWords) {
  // Train templates from TTS audio uploaded as sounds, then speak into the
  // simulated microphone and expect recognition events.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId input = client_->CreateDevice(loud, DeviceClass::kInput, {});
  ResourceId recognizer = client_->CreateDevice(loud, DeviceClass::kSpeechRecognizer, {});
  client_->CreateWire(input, 0, recognizer, 0);
  client_->SelectEvents(loud, kRecognitionEvents | kQueueEvents);
  client_->MapLoud(loud);

  TextToSpeech tts(8000);
  auto make_word_sound = [&](const std::string& word, double pitch) {
    tts.parameters().pitch_hz = pitch;
    return toolkit_->UploadSound(tts.Synthesize(word), {Encoding::kPcm16, 8000});
  };
  for (const char* word : {"play", "stop"}) {
    client_->Immediate(loud, TrainCommand(recognizer, word, make_word_sound(word, 110)));
    client_->Immediate(loud, TrainCommand(recognizer, word, make_word_sound(word, 120)));
  }
  client_->Immediate(loud, SetVocabularyCommand(recognizer, {"play", "stop"}));
  ExpectNoErrors();

  // Speak "stop" into the mic (with surrounding silence for endpointing).
  tts.parameters().pitch_hz = 115;
  auto utterance = tts.Synthesize("stop");
  std::vector<Sample> mic_audio(2000, 0);
  mic_audio.insert(mic_audio.end(), utterance.begin(), utterance.end());
  mic_audio.insert(mic_audio.end(), 6000, 0);
  board_->microphones()[0]->AddPendingAudio(mic_audio);

  auto event = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kRecognition; }, 20000);
  ASSERT_TRUE(event.has_value());
  RecognitionArgs result = RecognitionArgs::Decode(event->args);
  EXPECT_EQ(result.word, "stop");
  EXPECT_GT(result.score, 0u);
}

TEST_F(SpeechTest, VocabularySaveAndPreload) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId recognizer = client_->CreateDevice(loud, DeviceClass::kSpeechRecognizer, {});
  TextToSpeech tts(8000);
  ResourceId sound =
      toolkit_->UploadSound(tts.Synthesize("rewind"), {Encoding::kPcm16, 8000});
  client_->Immediate(loud, TrainCommand(recognizer, "rewind", sound));
  client_->Immediate(loud, SaveVocabularyCommand(recognizer, "commands"));
  ExpectNoErrors();

  // A new recognizer preloads the saved vocabulary via attributes.
  AttrList attrs;
  attrs.SetString(AttrTag::kVocabularyName, "commands");
  ResourceId recognizer2 = client_->CreateDevice(loud, DeviceClass::kSpeechRecognizer, attrs);
  Flush();
  MutexLock lock(&server_->mutex());
  auto* dev = dynamic_cast<RecognizerDevice*>(server_->state().FindDevice(recognizer2));
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->recognizer()->template_count(), 1u);
}

TEST_F(SpeechTest, MusicNotePlaysAtPitch) {
  board_->speakers()[0]->set_capture_output(true);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId music = client_->CreateDevice(loud, DeviceClass::kMusicSynthesizer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(music, 0, output, 0);
  client_->SelectEvents(loud, kQueueEvents);
  client_->MapLoud(loud);

  client_->Enqueue(loud, {NoteCommand(music, 69, 120, 400, 1)});  // A4
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));
  StepMs(300);

  const auto& played = board_->speakers()[0]->played();
  // Find an energetic window and verify 440 Hz dominance.
  size_t start = 0;
  while (start + 2048 < played.size() && std::abs(played[start]) < 500) {
    ++start;
  }
  ASSERT_LT(start + 2048, played.size());
  auto window = std::span<const Sample>(played).subspan(start, 2048);
  EXPECT_GT(GoertzelPower(window, 440, 8000), 0.001);
  EXPECT_LT(GoertzelPower(window, 523, 8000), GoertzelPower(window, 440, 8000));
}

TEST_F(SpeechTest, SetVoiceChangesTimbre) {
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId music = client_->CreateDevice(loud, DeviceClass::kMusicSynthesizer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(music, 0, output, 0);
  client_->MapLoud(loud);
  VoiceArgs voice;
  voice.waveform = 1;  // square
  client_->Immediate(loud, SetVoiceCommand(music, voice));
  Flush();
  MutexLock lock(&server_->mutex());
  auto* dev = dynamic_cast<MusicDevice*>(server_->state().FindDevice(music));
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->synth()->voice().waveform, Waveform::kSquare);
}

TEST_F(SpeechTest, CrossbarRoutesSelectedly) {
  board_->speakers()[0]->set_capture_output(true);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player1 = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId player2 = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  AttrList xbar_attrs;
  xbar_attrs.SetU32(AttrTag::kInputPorts, 2);
  xbar_attrs.SetU32(AttrTag::kOutputPorts, 2);
  ResourceId xbar = client_->CreateDevice(loud, DeviceClass::kCrossbar, xbar_attrs);
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  ResourceId recorder = client_->CreateDevice(loud, DeviceClass::kRecorder, {});
  client_->CreateWire(player1, 0, xbar, 0);
  client_->CreateWire(player2, 0, xbar, 1);
  client_->CreateWire(xbar, 0, output, 0);    // xbar out0 -> speaker
  client_->CreateWire(xbar, 1, recorder, 0);  // xbar out1 -> recorder
  client_->SelectEvents(loud, kQueueEvents);
  client_->MapLoud(loud);

  // Route input0 -> output0 and input1 -> output1.
  CrossbarStateArgs routes;
  routes.routes = {{0, 0, 1}, {1, 1, 1}};
  client_->Immediate(loud, SetCrossbarStateCommand(xbar, routes));

  ResourceId rec_sound = client_->CreateSound({Encoding::kPcm16, 8000});
  std::vector<Sample> dc1(800, 1111);
  std::vector<Sample> dc2(800, 2222);
  ResourceId s1 = toolkit_->UploadSound(dc1, {Encoding::kPcm16, 8000});
  ResourceId s2 = toolkit_->UploadSound(dc2, {Encoding::kPcm16, 8000});
  client_->Enqueue(loud,
                   {CoBeginCommand(), PlayCommand(player1, s1, 1), PlayCommand(player2, s2, 2),
                    RecordCommand(recorder, rec_sound, kTerminateOnStop, 150, 3),
                    CoEndCommand()});
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(3, 20000));
  StepMs(200);

  // Speaker got only stream 1; recorder got only stream 2.
  int spk1 = 0;
  int spk2 = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 1111) {
      ++spk1;
    }
    if (s == 2222) {
      ++spk2;
    }
  }
  EXPECT_EQ(spk1, 800);
  EXPECT_EQ(spk2, 0);

  auto recorded = toolkit_->DownloadSound(rec_sound);
  ASSERT_TRUE(recorded.ok());
  int rec1 = 0;
  int rec2 = 0;
  for (Sample s : recorded.value()) {
    if (s == 1111) {
      ++rec1;
    }
    if (s == 2222) {
      ++rec2;
    }
  }
  EXPECT_EQ(rec1, 0);
  EXPECT_GT(rec2, 700);
}

TEST_F(SpeechTest, DspPassesThroughWithGain) {
  board_->speakers()[0]->set_capture_output(true);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId dsp = client_->CreateDevice(loud, DeviceClass::kDsp, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  client_->CreateWire(player, 0, dsp, 0);
  client_->CreateWire(dsp, 0, output, 0);
  client_->SelectEvents(loud, kQueueEvents);
  client_->MapLoud(loud);
  client_->Immediate(loud, ChangeGainCommand(dsp, kUnityGain / 2));

  std::vector<Sample> dc(800, 10000);
  ResourceId sound = toolkit_->UploadSound(dc, {Encoding::kPcm16, 8000});
  client_->Enqueue(loud, {PlayCommand(player, sound, 1)});
  client_->StartQueue(loud);
  Flush();
  ASSERT_TRUE(toolkit_->WaitCommandDone(1));
  StepMs(200);

  int halved = 0;
  for (Sample s : board_->speakers()[0]->played()) {
    if (s == 5000) {
      ++halved;
    }
  }
  EXPECT_EQ(halved, 800);
}


TEST_F(SpeechTest, VoiceCommandOverTelephone) {
  // Section 1.2: "speech synthesis and recognition allow for remote,
  // telephone-based access to information". A far-end caller speaks a
  // trained word over the line; the recognizer wired to the telephone
  // reports it.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, {});
  ResourceId recognizer = client_->CreateDevice(loud, DeviceClass::kSpeechRecognizer, {});
  client_->CreateWire(telephone, 0, recognizer, 0);
  client_->SelectEvents(loud, kAllEvents);
  client_->MapLoud(loud);

  TextToSpeech tts(8000);
  auto train = [&](const std::string& word, double pitch) {
    tts.parameters().pitch_hz = pitch;
    ResourceId sound =
        toolkit_->UploadSound(tts.Synthesize(word), {Encoding::kPcm16, 8000});
    client_->Immediate(loud, TrainCommand(recognizer, word, sound));
  };
  for (const char* word : {"calendar", "messages"}) {
    train(word, 110);
    train(word, 120);
  }
  ExpectNoErrors();

  // The caller: connect, pause, speak "messages", silence, hang up.
  tts.parameters().pitch_hz = 115;
  auto utterance = tts.Synthesize("messages");
  std::vector<Sample> speech(4000, 0);
  speech.insert(speech.end(), utterance.begin(), utterance.end());
  FarEndParty* caller = board_->AddFarEnd("555-3333", "Remote User");
  caller->DialAndWait("555-0100").WaitMs(100).Speak(speech).WaitMs(4000).HangUp();

  auto ring = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kTelephoneRing; }, 10000);
  ASSERT_TRUE(ring.has_value());
  client_->Enqueue(loud, {AnswerCommand(telephone, 1)});
  client_->StartQueue(loud);
  Flush();

  auto recognized = toolkit_->WaitFor(
      [](const EventMessage& e) { return e.type == EventType::kRecognition; }, 30000);
  ASSERT_TRUE(recognized.has_value()) << "no recognition over the phone";
  EXPECT_EQ(RecognitionArgs::Decode(recognized->args).word, "messages");
}

TEST_F(SpeechTest, PromptAndRecognizeDialogue) {
  // AudioDialogue over the desktop devices: prompt through the speaker,
  // recognize from the microphone.
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId player = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId output = client_->CreateDevice(loud, DeviceClass::kOutput, {});
  ResourceId input = client_->CreateDevice(loud, DeviceClass::kInput, {});
  ResourceId recognizer = client_->CreateDevice(loud, DeviceClass::kSpeechRecognizer, {});
  client_->CreateWire(player, 0, output, 0);
  client_->CreateWire(input, 0, recognizer, 0);
  client_->SelectEvents(loud, kAllEvents);
  client_->MapLoud(loud);

  TextToSpeech tts(8000);
  auto train = [&](const std::string& word, double pitch) {
    tts.parameters().pitch_hz = pitch;
    ResourceId sound =
        toolkit_->UploadSound(tts.Synthesize(word), {Encoding::kPcm16, 8000});
    client_->Immediate(loud, TrainCommand(recognizer, word, sound));
  };
  train("yes", 110);
  train("yes", 120);
  train("no", 110);
  train("no", 120);
  ExpectNoErrors();

  ResourceId prompt = toolkit_->UploadSound(TestTone(200), kTelephoneFormat);
  // The user answers "no" shortly after the prompt.
  tts.parameters().pitch_hz = 115;
  auto answer = tts.Synthesize("no");
  std::vector<Sample> mic(4000, 0);
  mic.insert(mic.end(), answer.begin(), answer.end());
  mic.insert(mic.end(), 6000, 0);
  board_->microphones()[0]->AddPendingAudio(mic);

  AudioDialogue dialogue(toolkit_.get());
  auto word = dialogue.PromptAndRecognize(loud, player, prompt, 30000);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, "no");
}

}  // namespace
}  // namespace aud
