// Shared test fixture: an in-process server over a simulated board with
// manually stepped (virtual) time, plus one connected Alib client and a
// toolkit whose time pump steps the engine.

#ifndef TESTS_SERVER_FIXTURE_H_
#define TESTS_SERVER_FIXTURE_H_

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/alib/alib.h"
#include "src/dsp/tone.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override { Init(BoardConfig{}); }

  void Init(const BoardConfig& config) { Init(config, ServerOptions{}); }

  void Init(const BoardConfig& config, const ServerOptions& options) {
    // Re-Init (tests that need custom options/boards): tear the old world
    // down in dependency order before the board goes away.
    toolkit_.reset();
    client_.reset();
    extra_clients_.clear();
    if (server_ != nullptr) {
      server_->Shutdown();
      server_.reset();
    }
    board_ = std::make_unique<Board>(config);
    server_ = std::make_unique<AudioServer>(board_.get(), options);
    client_ = Connect("test-client");
    ASSERT_NE(client_, nullptr);
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    toolkit_->set_time_pump([this] { server_->StepFrames(160); });
  }

  void TearDown() override {
    toolkit_.reset();
    client_.reset();
    extra_clients_.clear();
    if (server_ != nullptr) {
      server_->Shutdown();
    }
  }

  // Opens an additional client connection.
  std::unique_ptr<AudioConnection> Connect(const std::string& name) {
    auto [client_end, server_end] = CreatePipePair();
    server_->AddConnection(std::move(server_end));
    return AudioConnection::Open(std::move(client_end), name);
  }

  // Steps engine time by `ms` of audio.
  void StepMs(int64_t ms) {
    server_->StepFrames(ms * board_->sample_rate_hz() / 1000);
  }

  // Round-trips the client so all prior requests are processed.
  void Flush() { ASSERT_TRUE(client_->Sync().ok()); }

  // Expects that no asynchronous errors are pending (after a Sync).
  void ExpectNoErrors() {
    ASSERT_TRUE(client_->Sync().ok());
    AsyncError error;
    while (client_->NextError(&error)) {
      ADD_FAILURE() << "unexpected protocol error: " << ErrorCodeName(error.error.code)
                    << " (" << error.error.detail << ") on request seq " << error.sequence
                    << " opcode " << error.error.opcode;
    }
  }

  // Expects exactly one pending error with `code` (drains it).
  void ExpectError(ErrorCode code) {
    ASSERT_TRUE(client_->Sync().ok());
    AsyncError error;
    ASSERT_TRUE(client_->NextError(&error)) << "expected error " << ErrorCodeName(code);
    EXPECT_EQ(error.error.code, code) << error.error.detail;
    while (client_->NextError(&error)) {
    }
  }

  // A second's worth of 440 Hz test tone at the board rate.
  std::vector<Sample> TestTone(int ms = 500, double freq = 440.0) {
    std::vector<Sample> tone;
    SineOscillator osc(freq, board_->sample_rate_hz(), 0.5);
    osc.Generate(static_cast<size_t>(board_->sample_rate_hz()) * ms / 1000, &tone);
    return tone;
  }

  std::unique_ptr<Board> board_;
  std::unique_ptr<AudioServer> server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
  std::vector<std::unique_ptr<AudioConnection>> extra_clients_;
};

// RMS helper for asserting audible output.
inline double Rms(std::span<const Sample> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (Sample s : samples) {
    double x = s / 32768.0;
    acc += x * x;
  }
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

}  // namespace aud

#endif  // TESTS_SERVER_FIXTURE_H_
