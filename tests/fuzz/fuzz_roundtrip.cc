// Encode/decode round-trip property harness. Instead of throwing bytes at
// the decoders (fuzz_decode's job), this derives *valid* messages from the
// fuzz input, encodes them, decodes the result, re-encodes, and aborts on
// any difference:
//
//   Encode(Decode(Encode(m))) == Encode(m)   and   Decode consumed every byte
//
// A violation means an encoder and its decoder disagree about the wire
// format — exactly the asymmetric-drift bug class that schema checks can't
// see (both sides compile; they just don't agree).
//
// Field values come from a saturating ByteReader over the fuzz input, so
// every input maps deterministically to one message and the fuzzer's
// mutations explore field-value space (zero, max, sign bits, empty/large
// strings and vectors).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "src/common/byte_io.h"
#include "src/wire/messages.h"
#include "src/wire/protocol.h"

namespace aud {
namespace {

[[noreturn]] void Fail(const char* what, const char* type_name) {
  std::fprintf(stderr, "fuzz_roundtrip: %s for %s\n", what, type_name);
  std::abort();
}

// Round-trips a ByteWriter/ByteReader message struct.
template <typename T>
void RoundTripStruct(const T& value, const char* type_name) {
  ByteWriter w;
  value.Encode(&w);
  std::vector<uint8_t> wire = w.Take();

  ByteReader r(wire);
  T decoded = T::Decode(&r);
  if (!r.ok()) {
    Fail("decoder over-read its own encoder's output", type_name);
  }
  if (r.remaining() != 0) {
    Fail("decoder left trailing bytes unconsumed", type_name);
  }

  ByteWriter w2;
  decoded.Encode(&w2);
  if (w2.bytes() != wire) {
    Fail("re-encode differs from original encode", type_name);
  }
}

// Round-trips a vector-returning args payload (CommandSpec / event args).
template <typename T>
void RoundTripArgs(const T& value, const char* type_name) {
  std::vector<uint8_t> wire = value.Encode();
  T decoded = T::Decode(wire);
  std::vector<uint8_t> wire2 = decoded.Encode();
  if (wire2 != wire) {
    Fail("re-encode differs from original encode", type_name);
  }
}

// Bounded string / blob derivation: length from one byte, content from the
// reader (saturates to empty at end of input, which is itself a useful
// boundary case).
std::string TakeString(ByteReader* r) {
  size_t len = r->ReadU8() % 24;
  std::span<const uint8_t> raw = r->ReadBytes(len);
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

std::vector<uint8_t> TakeBlob(ByteReader* r) {
  size_t len = r->ReadU8() % 64;
  std::span<const uint8_t> raw = r->ReadBytes(len);
  return std::vector<uint8_t>(raw.begin(), raw.end());
}

CommandSpec TakeCommandSpec(ByteReader* r) {
  CommandSpec spec;
  spec.device = r->ReadU32();
  spec.command = static_cast<DeviceCommand>(r->ReadU16());
  spec.tag = r->ReadU32();
  spec.args = TakeBlob(r);
  return spec;
}

// Header framing property: a frame built by FrameMessage with a valid type
// and in-range length must pass DecodeHeaderStrict and reproduce its fields.
void RoundTripFrame(ByteReader* r) {
  MessageType type = static_cast<MessageType>(1 + r->ReadU8() % 4);
  uint16_t code = r->ReadU16();
  uint32_t sequence = r->ReadU32();
  std::vector<uint8_t> payload = TakeBlob(r);

  std::vector<uint8_t> frame = FrameMessage(type, code, sequence, payload);
  Result<MessageHeader> header = DecodeHeaderStrict(frame);
  if (!header.ok()) {
    Fail("DecodeHeaderStrict rejected FrameMessage output", "MessageHeader");
  }
  const MessageHeader& h = header.value();
  if (h.type != type || h.code != code || h.sequence != sequence ||
      h.length != payload.size() || frame.size() != kHeaderSize + payload.size()) {
    Fail("framed header fields do not round-trip", "MessageHeader");
  }
}

}  // namespace
}  // namespace aud

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace aud;
  ByteReader in(std::span<const uint8_t>(data, size));

  RoundTripFrame(&in);

  {
    SetupRequest m;
    m.magic = in.ReadU32();
    m.major = in.ReadU16();
    m.minor = in.ReadU16();
    m.client_name = TakeString(&in);
    RoundTripStruct(m, "SetupRequest");
  }
  {
    SetupReply m;
    m.success = in.ReadU8();
    m.major = in.ReadU16();
    m.minor = in.ReadU16();
    m.id_base = in.ReadU32();
    m.id_count = in.ReadU32();
    m.device_loud = in.ReadU32();
    m.server_name = TakeString(&in);
    m.reason = TakeString(&in);
    RoundTripStruct(m, "SetupReply");
  }
  {
    CommandSpec m = TakeCommandSpec(&in);
    RoundTripStruct(m, "CommandSpec");
  }
  {
    EnqueueCommandsReq m;
    m.loud = in.ReadU32();
    size_t n = in.ReadU8() % 5;
    for (size_t i = 0; i < n; ++i) {
      m.commands.push_back(TakeCommandSpec(&in));
    }
    RoundTripStruct(m, "EnqueueCommandsReq");
  }
  {
    ImmediateCommandReq m;
    m.loud = in.ReadU32();
    m.command = TakeCommandSpec(&in);
    RoundTripStruct(m, "ImmediateCommandReq");
  }
  {
    ResourceReq m;
    m.id = in.ReadU32();
    RoundTripStruct(m, "ResourceReq");
  }
  {
    CreateWireReq m;
    m.id = in.ReadU32();
    m.src_device = in.ReadU32();
    m.src_port = in.ReadU16();
    m.dst_device = in.ReadU32();
    m.dst_port = in.ReadU16();
    m.has_format = in.ReadU8();
    m.format.encoding = static_cast<Encoding>(in.ReadU8());
    m.format.sample_rate_hz = in.ReadU32();
    RoundTripStruct(m, "CreateWireReq");
  }
  {
    WriteSoundDataReq m;
    m.id = in.ReadU32();
    m.offset = in.ReadU64();
    m.data = TakeBlob(&in);
    RoundTripStruct(m, "WriteSoundDataReq");
  }
  {
    ChangePropertyReq m;
    m.resource = in.ReadU32();
    m.name = TakeString(&in);
    m.type = TakeString(&in);
    m.value = TakeBlob(&in);
    RoundTripStruct(m, "ChangePropertyReq");
  }
  {
    QueueStateReply m;
    m.loud = in.ReadU32();
    m.state = static_cast<QueueState>(in.ReadU8());
    m.depth = in.ReadU32();
    m.current_tag = in.ReadU32();
    RoundTripStruct(m, "QueueStateReply");
  }
  {
    ServerTimeReply m;
    m.server_time = in.ReadI64();
    RoundTripStruct(m, "ServerTimeReply");
  }
  {
    EventMessage m;
    m.type = static_cast<EventType>(in.ReadU16());
    m.resource = in.ReadU32();
    m.server_time = in.ReadI64();
    m.args = TakeBlob(&in);
    RoundTripStruct(m, "EventMessage");
  }
  {
    ErrorMessage m;
    m.code = static_cast<ErrorCode>(in.ReadU8());
    m.resource = in.ReadU32();
    m.opcode = in.ReadU16();
    m.detail = TakeString(&in);
    RoundTripStruct(m, "ErrorMessage");
  }
  {
    TraceEventWire m;
    m.t_us = in.ReadI64();
    m.seq = in.ReadU64();
    m.tid = in.ReadU32();
    m.reason = in.ReadU16();
    m.arg0 = in.ReadU32();
    m.arg1 = in.ReadU32();
    m.trace = in.ReadU64();
    m.parent = in.ReadU64();
    m.dur_us = in.ReadU32();
    RoundTripStruct(m, "TraceEventWire");
  }

  // Typed args payloads.
  {
    PlayArgs a;
    a.sound = in.ReadU32();
    a.start_sample = in.ReadI64();
    a.end_sample = in.ReadI64();
    RoundTripArgs(a, "PlayArgs");
  }
  {
    TrainArgs a;
    a.word = TakeString(&in);
    a.sound = in.ReadU32();
    RoundTripArgs(a, "TrainArgs");
  }
  {
    WordListArgs a;
    size_t n = in.ReadU8() % 6;
    for (size_t i = 0; i < n; ++i) {
      a.words.push_back(TakeString(&in));
    }
    RoundTripArgs(a, "WordListArgs");
  }
  {
    ExceptionListArgs a;
    size_t n = in.ReadU8() % 4;
    for (size_t i = 0; i < n; ++i) {
      std::string word = TakeString(&in);
      std::string phonemes = TakeString(&in);
      a.entries.emplace_back(std::move(word), std::move(phonemes));
    }
    RoundTripArgs(a, "ExceptionListArgs");
  }
  {
    VoiceArgs a;
    a.waveform = in.ReadU8();
    a.attack_ms = in.ReadU16();
    a.decay_ms = in.ReadU16();
    a.sustain_centi = in.ReadU16();
    a.release_ms = in.ReadU16();
    RoundTripArgs(a, "VoiceArgs");
  }
  {
    CrossbarStateArgs a;
    size_t n = in.ReadU8() % 6;
    for (size_t i = 0; i < n; ++i) {
      CrossbarStateArgs::Route route;
      route.input = in.ReadU16();
      route.output = in.ReadU16();
      route.enabled = in.ReadU8();
      a.routes.push_back(route);
    }
    RoundTripArgs(a, "CrossbarStateArgs");
  }
  {
    SyncMarkArgs a;
    a.position_samples = in.ReadU64();
    a.device_time = in.ReadI64();
    a.total_samples = in.ReadU64();
    RoundTripArgs(a, "SyncMarkArgs");
  }
  {
    RecognitionArgs a;
    a.word = TakeString(&in);
    a.score = in.ReadU32();
    RoundTripArgs(a, "RecognitionArgs");
  }
  return 0;
}
