// Standalone fuzz driver: a main() that exercises a LLVMFuzzerTestOneInput
// harness without libFuzzer, so the fuzz targets run in every lane — the
// container toolchain is GCC, which has no -fsanitize=fuzzer. Two modes,
// both deterministic:
//
//   1. Corpus replay: every file in the corpus dirs/files on the command
//      line is fed to the harness once. This is the regression half — a
//      crasher checked into the corpus keeps failing until fixed.
//   2. Mutation smoke: -runs=N derives N inputs by mutating corpus entries
//      with a fixed-seed SplitMix64 PRNG (override with -seed=S). Not a
//      coverage-guided search, but it sweeps truncations, byte flips and
//      splices over every seed on every CI run.
//
// Real coverage-guided fuzzing uses the same harness sources linked against
// libFuzzer via -DAUD_FUZZ=ON with a clang toolchain (see
// tests/fuzz/CMakeLists.txt).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// SplitMix64: tiny, seedable, and good enough to scatter mutations.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform-ish in [0, n); n must be nonzero.
  size_t Below(size_t n) { return static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

bool ReadFileBytes(const std::filesystem::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// One derived input: pick a seed, then stack 1-4 mutations on it.
std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& seeds,
                            SplitMix64* rng, size_t max_len) {
  std::vector<uint8_t> input;
  if (!seeds.empty()) {
    input = seeds[rng->Below(seeds.size())];
  }
  size_t rounds = 1 + rng->Below(4);
  for (size_t i = 0; i < rounds; ++i) {
    switch (rng->Below(6)) {
      case 0:  // flip a byte
        if (!input.empty()) {
          input[rng->Below(input.size())] ^= static_cast<uint8_t>(rng->Next());
        }
        break;
      case 1:  // truncate
        if (!input.empty()) {
          input.resize(rng->Below(input.size() + 1));
        }
        break;
      case 2: {  // insert random bytes
        size_t n = 1 + rng->Below(8);
        size_t at = input.empty() ? 0 : rng->Below(input.size() + 1);
        std::vector<uint8_t> chunk(n);
        for (uint8_t& b : chunk) {
          b = static_cast<uint8_t>(rng->Next());
        }
        input.insert(input.begin() + static_cast<ptrdiff_t>(at), chunk.begin(),
                     chunk.end());
        break;
      }
      case 3: {  // overwrite with an interesting value
        if (input.size() >= 4) {
          static constexpr uint32_t kInteresting[] = {
              0, 1, 0x7F, 0x80, 0xFF, 0x7FFF, 0x8000, 0xFFFF,
              0x7FFFFFFF, 0x80000000u, 0xFFFFFFFFu, 16u << 20, (16u << 20) + 1};
          uint32_t v = kInteresting[rng->Below(std::size(kInteresting))];
          size_t at = rng->Below(input.size() - 3);
          std::memcpy(input.data() + at, &v, 4);
        }
        break;
      }
      case 4: {  // splice two seeds
        if (!seeds.empty()) {
          const std::vector<uint8_t>& other = seeds[rng->Below(seeds.size())];
          size_t keep = input.empty() ? 0 : rng->Below(input.size() + 1);
          input.resize(keep);
          size_t from = other.empty() ? 0 : rng->Below(other.size() + 1);
          input.insert(input.end(), other.begin() + static_cast<ptrdiff_t>(from),
                       other.end());
        }
        break;
      }
      case 5:  // append random tail
        for (size_t n = 1 + rng->Below(16); n > 0; --n) {
          input.push_back(static_cast<uint8_t>(rng->Next()));
        }
        break;
    }
  }
  if (input.size() > max_len) {
    input.resize(max_len);
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  size_t max_len = 4096;
  std::vector<std::filesystem::path> corpus_paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::stoull(arg.substr(6));
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::stoull(arg.substr(6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::stoull(arg.substr(9));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: %s [-runs=N] [-seed=S] [-max_len=N] [corpus...]\n",
                   argv[0]);
      return 2;
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Phase 1: replay every corpus entry.
  std::vector<std::vector<uint8_t>> seeds;
  for (const std::filesystem::path& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> entries;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) {
          entries.push_back(entry.path());
        }
      }
      // Directory iteration order is filesystem-dependent; sort for
      // reproducible replay and mutation seeding.
      std::sort(entries.begin(), entries.end());
      for (const auto& entry : entries) {
        std::vector<uint8_t> bytes;
        if (!ReadFileBytes(entry, &bytes)) {
          std::fprintf(stderr, "fuzz driver: cannot read %s\n", entry.c_str());
          return 2;
        }
        seeds.push_back(std::move(bytes));
      }
    } else {
      std::vector<uint8_t> bytes;
      if (!ReadFileBytes(path, &bytes)) {
        std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
        return 2;
      }
      seeds.push_back(std::move(bytes));
    }
  }
  for (const std::vector<uint8_t>& input : seeds) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fuzz driver: replayed %zu corpus entr%s\n", seeds.size(),
              seeds.size() == 1 ? "y" : "ies");

  // Phase 2: deterministic mutation smoke.
  if (runs > 0) {
    SplitMix64 rng(seed);
    for (uint64_t i = 0; i < runs; ++i) {
      std::vector<uint8_t> input = Mutate(seeds, &rng, max_len);
      LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("fuzz driver: %llu mutated runs ok (seed=%llu)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
