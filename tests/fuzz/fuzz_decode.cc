// Wire-decode fuzz harness. The attack surface is every Decode() the server
// or client runs over peer-controlled bytes: DecodeHeaderStrict at the
// framing layer, the per-opcode request payloads the dispatcher decodes, the
// reply/event/error payloads Alib decodes, and the typed command/event arg
// blobs decoded one level further down. ByteReader saturates instead of
// reading out of bounds, so the invariant under test is simply "no decode
// crashes, overflows, or runs away on arbitrary input" — ASan/UBSan (or the
// standalone driver's bounds) supply the oracle.
//
// Input shape: byte 0 selects a decode target, the rest is the payload. A
// zero selector routes the input like a real connection would: strict header
// first, then the payload decoder the header's type+code selects.

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/wire/messages.h"
#include "src/wire/protocol.h"

namespace aud {
namespace {

// Decoded values are consumed through a volatile sink so the decode (and any
// latent bug inside it) cannot be optimised away.
volatile size_t g_sink = 0;

template <typename T>
void DecodeStruct(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  T value = T::Decode(&r);
  g_sink = g_sink + sizeof(value) + (r.ok() ? 1 : 0);
}

template <typename T>
void DecodeArgs(std::span<const uint8_t> bytes) {
  T value = T::Decode(bytes);
  g_sink = g_sink + sizeof(value);
}

void DecodeStrictHeader(std::span<const uint8_t> bytes) {
  Result<MessageHeader> header = DecodeHeaderStrict(bytes);
  g_sink = g_sink + (header.ok() ? header.value().length : 0);
}

// Decodes a request payload exactly as the dispatcher does (the opcode ->
// struct mapping in src/server/dispatcher.cc). No default: a new opcode
// that is not wired up here fails the build, same as the dispatcher.
void DecodeRequestPayload(Opcode opcode, std::span<const uint8_t> payload) {
  switch (opcode) {
    case Opcode::kNoOp:
    case Opcode::kListCatalogue:
    case Opcode::kQueryDeviceLoud:
    case Opcode::kQueryActiveStack:
    case Opcode::kGetServerTime:
    case Opcode::kSync:
    case Opcode::kOpcodeCount:
      break;
    case Opcode::kCreateLoud:
      DecodeStruct<CreateLoudReq>(payload);
      break;
    case Opcode::kDestroyLoud:
    case Opcode::kDestroyVirtualDevice:
    case Opcode::kQueryVirtualDevice:
    case Opcode::kDestroyWire:
    case Opcode::kQueryWires:
    case Opcode::kUnmapLoud:
    case Opcode::kDestroySound:
    case Opcode::kQuerySound:
    case Opcode::kStartQueue:
    case Opcode::kStopQueue:
    case Opcode::kPauseQueue:
    case Opcode::kResumeQueue:
    case Opcode::kFlushQueue:
    case Opcode::kQueryQueue:
    case Opcode::kListProperties:
    case Opcode::kQueryLoud:
      DecodeStruct<ResourceReq>(payload);
      break;
    case Opcode::kCreateVirtualDevice:
      DecodeStruct<CreateVirtualDeviceReq>(payload);
      break;
    case Opcode::kAugmentVirtualDevice:
      DecodeStruct<AugmentVirtualDeviceReq>(payload);
      break;
    case Opcode::kCreateWire:
      DecodeStruct<CreateWireReq>(payload);
      break;
    case Opcode::kMapLoud:
    case Opcode::kRaiseLoud:
    case Opcode::kLowerLoud:
      DecodeStruct<MapLoudReq>(payload);
      break;
    case Opcode::kCreateSound:
      DecodeStruct<CreateSoundReq>(payload);
      break;
    case Opcode::kWriteSoundData:
      DecodeStruct<WriteSoundDataReq>(payload);
      break;
    case Opcode::kReadSoundData:
      DecodeStruct<ReadSoundDataReq>(payload);
      break;
    case Opcode::kLoadCatalogueSound:
    case Opcode::kSaveCatalogueSound:
      DecodeStruct<NamedSoundReq>(payload);
      break;
    case Opcode::kEnqueueCommands:
      DecodeStruct<EnqueueCommandsReq>(payload);
      break;
    case Opcode::kImmediateCommand:
      DecodeStruct<ImmediateCommandReq>(payload);
      break;
    case Opcode::kSelectEvents:
      DecodeStruct<SelectEventsReq>(payload);
      break;
    case Opcode::kSetSyncMarks:
      DecodeStruct<SetSyncMarksReq>(payload);
      break;
    case Opcode::kChangeProperty:
      DecodeStruct<ChangePropertyReq>(payload);
      break;
    case Opcode::kDeleteProperty:
    case Opcode::kGetProperty:
      DecodeStruct<NamedPropertyReq>(payload);
      break;
    case Opcode::kSetRedirect:
      DecodeStruct<SetRedirectReq>(payload);
      break;
    case Opcode::kGetServerStats:
      DecodeStruct<GetServerStatsReq>(payload);
      break;
    case Opcode::kGetServerTrace:
      DecodeStruct<GetServerTraceReq>(payload);
      break;
    case Opcode::kGetRequestTrace:
      DecodeStruct<GetRequestTraceReq>(payload);
      break;
    case Opcode::kGetEntityStats:
      DecodeStruct<GetEntityStatsReq>(payload);
      break;
  }
}

// Decodes event args the way Alib's event demux does: EventMessage first,
// then the typed arg payload its event type names.
void DecodeEventAndArgs(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  EventMessage event = EventMessage::Decode(&r);
  if (!r.ok()) {
    return;
  }
  std::span<const uint8_t> args(event.args);
  switch (event.type) {
    case EventType::kQueueStarted:
    case EventType::kQueueStopped:
    case EventType::kQueueResumed:
    case EventType::kMapNotify:
    case EventType::kUnmapNotify:
    case EventType::kActivateNotify:
    case EventType::kDeactivateNotify:
    case EventType::kTelephoneAnswered:
    case EventType::kRecorderStarted:
    case EventType::kEventTypeCount:
      break;
    case EventType::kQueuePaused:
      DecodeArgs<QueuePausedArgs>(args);
      break;
    case EventType::kCommandDone:
      DecodeArgs<CommandDoneArgs>(args);
      break;
    case EventType::kMapRequest:
    case EventType::kRestackRequest:
      DecodeArgs<MapRequestArgs>(args);
      break;
    case EventType::kTelephoneRing:
      DecodeArgs<TelephoneRingArgs>(args);
      break;
    case EventType::kTelephoneDialDone:
    case EventType::kCallProgress:
      DecodeArgs<CallProgressArgs>(args);
      break;
    case EventType::kDtmfReceived:
      DecodeArgs<DtmfReceivedArgs>(args);
      break;
    case EventType::kRecorderStopped:
      DecodeArgs<RecorderStoppedArgs>(args);
      break;
    case EventType::kRecognition:
      DecodeArgs<RecognitionArgs>(args);
      break;
    case EventType::kSyncMark:
      DecodeArgs<SyncMarkArgs>(args);
      break;
    case EventType::kPropertyNotify:
      DecodeArgs<PropertyNotifyArgs>(args);
      break;
  }
}

// Selector 0: route the input like a live connection — 12 strict-header
// bytes, then the decoder the header selects.
void DecodeRouted(std::span<const uint8_t> bytes) {
  Result<MessageHeader> header = DecodeHeaderStrict(
      bytes.size() >= kHeaderSize ? bytes.first(kHeaderSize) : bytes);
  if (!header.ok()) {
    return;
  }
  std::span<const uint8_t> payload = bytes.subspan(kHeaderSize);
  const MessageHeader& h = header.value();
  switch (h.type) {
    case MessageType::kRequest:
      if (ValidateRequestHeader(h).ok()) {
        DecodeRequestPayload(static_cast<Opcode>(h.code), payload);
      }
      break;
    case MessageType::kReply:
      // The reply payload type depends on the *request* the sequence number
      // matches; stress the structurally richest decoders.
      DecodeStruct<ServerStatsReply>(payload);
      break;
    case MessageType::kEvent:
      DecodeEventAndArgs(payload);
      break;
    case MessageType::kError:
      DecodeStruct<ErrorMessage>(payload);
      break;
  }
}

using Target = void (*)(std::span<const uint8_t>);

// Every peer-facing decoder. Order is append-only so corpus selector bytes
// keep meaning the same target across revisions.
constexpr Target kTargets[] = {
    DecodeRouted,                          // 0
    DecodeStrictHeader,                    // 1
    DecodeStruct<MessageHeader>,           // 2
    DecodeStruct<SetupRequest>,            // 3
    DecodeStruct<SetupReply>,              // 4
    DecodeStruct<CommandSpec>,             // 5
    DecodeStruct<CreateLoudReq>,           // 6
    DecodeStruct<ResourceReq>,             // 7
    DecodeStruct<CreateVirtualDeviceReq>,  // 8
    DecodeStruct<AugmentVirtualDeviceReq>, // 9
    DecodeStruct<CreateWireReq>,           // 10
    DecodeStruct<MapLoudReq>,              // 11
    DecodeStruct<CreateSoundReq>,          // 12
    DecodeStruct<WriteSoundDataReq>,       // 13
    DecodeStruct<ReadSoundDataReq>,        // 14
    DecodeStruct<NamedSoundReq>,           // 15
    DecodeStruct<EnqueueCommandsReq>,      // 16
    DecodeStruct<ImmediateCommandReq>,     // 17
    DecodeStruct<SelectEventsReq>,         // 18
    DecodeStruct<SetSyncMarksReq>,         // 19
    DecodeStruct<ChangePropertyReq>,       // 20
    DecodeStruct<NamedPropertyReq>,        // 21
    DecodeStruct<SetRedirectReq>,          // 22
    DecodeStruct<GetServerStatsReq>,       // 23
    DecodeStruct<GetServerTraceReq>,       // 24
    DecodeStruct<GetRequestTraceReq>,      // 25
    DecodeStruct<GetEntityStatsReq>,       // 26
    DecodeStruct<VirtualDeviceReply>,      // 27
    DecodeStruct<WiresReply>,              // 28
    DecodeStruct<SoundDataReply>,          // 29
    DecodeStruct<SoundInfoReply>,          // 30
    DecodeStruct<CatalogueReply>,          // 31
    DecodeStruct<QueueStateReply>,         // 32
    DecodeStruct<PropertyReply>,           // 33
    DecodeStruct<PropertyListReply>,       // 34
    DecodeStruct<DeviceLoudReply>,         // 35
    DecodeStruct<ActiveStackReply>,        // 36
    DecodeStruct<ServerTimeReply>,         // 37
    DecodeStruct<LoudStateReply>,          // 38
    DecodeStruct<ServerStatsReply>,        // 39
    DecodeStruct<ServerTraceReply>,        // 40
    DecodeStruct<RequestTraceReply>,       // 41
    DecodeStruct<EntityStatsReply>,        // 42
    DecodeStruct<EventMessage>,            // 43
    DecodeStruct<ErrorMessage>,            // 44
    DecodeEventAndArgs,                    // 45
    DecodeArgs<PlayArgs>,                  // 46
    DecodeArgs<RecordArgs>,                // 47
    DecodeArgs<StringArg>,                 // 48
    DecodeArgs<GainArgs>,                  // 49
    DecodeArgs<InputGainArgs>,             // 50
    DecodeArgs<DelayArgs>,                 // 51
    DecodeArgs<TrainArgs>,                 // 52
    DecodeArgs<WordListArgs>,              // 53
    DecodeArgs<ExceptionListArgs>,         // 54
    DecodeArgs<NoteArgs>,                  // 55
    DecodeArgs<VoiceArgs>,                 // 56
    DecodeArgs<CrossbarStateArgs>,         // 57
    DecodeArgs<ValuesArgs>,                // 58
    DecodeArgs<CommandDoneArgs>,           // 59
    DecodeArgs<QueuePausedArgs>,           // 60
    DecodeArgs<TelephoneRingArgs>,         // 61
    DecodeArgs<CallProgressArgs>,          // 62
    DecodeArgs<DtmfReceivedArgs>,          // 63
    DecodeArgs<RecorderStoppedArgs>,       // 64
    DecodeArgs<RecognitionArgs>,           // 65
    DecodeArgs<SyncMarkArgs>,              // 66
    DecodeArgs<PropertyNotifyArgs>,        // 67
    DecodeArgs<MapRequestArgs>,            // 68
};

constexpr size_t kTargetCount = sizeof(kTargets) / sizeof(kTargets[0]);

}  // namespace
}  // namespace aud

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) {
    return 0;
  }
  std::span<const uint8_t> input(data, size);
  aud::kTargets[input[0] % aud::kTargetCount](input.subspan(1));
  return 0;
}
