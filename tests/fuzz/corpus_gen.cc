// Seed-corpus generator. Writes well-formed wire messages (built with the
// real encoders) into tests/fuzz/corpus/{decode,framer,roundtrip}/ so both
// the libFuzzer harnesses and the standalone smoke driver start from valid
// frames instead of noise. The committed corpus is this tool's output; when
// the protocol grows a message, extend this file and re-run:
//
//   ./corpus_gen <repo-root>/tests/fuzz/corpus
//
// Output names are stable, so regeneration produces a clean diff.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/wire/messages.h"
#include "src/wire/protocol.h"

namespace {

using namespace aud;

bool WriteFileBytes(const std::filesystem::path& path, std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

// decode-harness seed: selector byte + payload.
std::vector<uint8_t> WithSelector(uint8_t selector, std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(payload.size() + 1);
  out.push_back(selector);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

template <typename T>
std::vector<uint8_t> EncodeStruct(const T& value) {
  ByteWriter w;
  value.Encode(&w);
  return w.Take();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_gen <corpus-root>\n");
    return 2;
  }
  std::filesystem::path root = argv[1];
  struct Entry {
    const char* dir;
    const char* name;
    std::vector<uint8_t> bytes;
  };
  std::vector<Entry> entries;

  // -- decode corpus ---------------------------------------------------------

  // Routed mode (selector 0): complete valid frames of each message type.
  {
    CreateLoudReq req;
    req.id = 0x1000;
    req.parent = kNoResource;
    std::vector<uint8_t> payload = EncodeStruct(req);
    entries.push_back({"decode", "routed_create_loud",
                       WithSelector(0, FrameMessage(MessageType::kRequest,
                                                    static_cast<uint16_t>(Opcode::kCreateLoud),
                                                    7, payload))});
  }
  {
    EnqueueCommandsReq req;
    req.loud = 0x1000;
    CommandSpec play;
    play.device = 0x1001;
    play.command = DeviceCommand::kPlay;
    play.tag = 42;
    PlayArgs args;
    args.sound = 0x1002;
    play.args = args.Encode();
    req.commands.push_back(play);
    CommandSpec delay;
    delay.device = kNoResource;
    delay.command = DeviceCommand::kDelay;
    DelayArgs delay_args;
    delay_args.milliseconds = 250;
    delay.args = delay_args.Encode();
    req.commands.push_back(delay);
    std::vector<uint8_t> payload = EncodeStruct(req);
    entries.push_back({"decode", "routed_enqueue_commands",
                       WithSelector(0, FrameMessage(MessageType::kRequest,
                                                    static_cast<uint16_t>(Opcode::kEnqueueCommands),
                                                    8, payload))});
  }
  {
    EventMessage event;
    event.type = EventType::kCommandDone;
    event.resource = 0x1000;
    event.server_time = 123456;
    CommandDoneArgs args;
    args.tag = 42;
    args.command = static_cast<uint16_t>(DeviceCommand::kPlay);
    event.args = args.Encode();
    std::vector<uint8_t> payload = EncodeStruct(event);
    entries.push_back({"decode", "routed_event_command_done",
                       WithSelector(0, FrameMessage(MessageType::kEvent,
                                                    static_cast<uint16_t>(EventType::kCommandDone),
                                                    9, payload))});
  }
  {
    ErrorMessage error;
    error.code = ErrorCode::kBadResource;
    error.resource = 0xDEAD;
    error.opcode = static_cast<uint16_t>(Opcode::kMapLoud);
    error.detail = "no such loud";
    std::vector<uint8_t> payload = EncodeStruct(error);
    entries.push_back({"decode", "routed_error",
                       WithSelector(0, FrameMessage(MessageType::kError,
                                                    static_cast<uint16_t>(ErrorCode::kBadResource),
                                                    10, payload))});
  }

  // Direct-decoder seeds for the structurally richest payloads.
  {
    SetupRequest setup;
    setup.client_name = "corpus";
    entries.push_back({"decode", "setup_request", WithSelector(3, EncodeStruct(setup))});
  }
  {
    ChangePropertyReq req;
    req.resource = 0x1000;
    req.name = "WORKSPACE";
    req.type = "STRING";
    req.value = {'m', 'a', 'i', 'n'};
    entries.push_back({"decode", "change_property", WithSelector(20, EncodeStruct(req))});
  }
  {
    ServerStatsReply stats;
    stats.requests_total = 100;
    OpcodeStats op;
    op.opcode = static_cast<uint16_t>(Opcode::kSync);
    op.count = 50;
    stats.opcodes.push_back(op);
    entries.push_back({"decode", "server_stats_reply", WithSelector(39, EncodeStruct(stats))});
  }
  {
    ServerTraceReply trace;
    TraceEventWire ev;
    ev.t_us = 1000;
    ev.seq = 1;
    ev.reason = 2;
    trace.events.push_back(ev);
    entries.push_back({"decode", "server_trace_reply", WithSelector(40, EncodeStruct(trace))});
  }
  {
    ExceptionListArgs args;
    args.entries.emplace_back("tomato", "t ah m ey t ow");
    entries.push_back({"decode", "exception_list_args", WithSelector(54, args.Encode())});
  }
  {
    CrossbarStateArgs args;
    args.routes.push_back({0, 1, 1});
    args.routes.push_back({1, 0, 0});
    entries.push_back({"decode", "crossbar_state_args", WithSelector(57, args.Encode())});
  }
  // A strict-header seed exercising each rejection branch's neighbourhood.
  {
    std::vector<uint8_t> frame =
        FrameMessage(MessageType::kRequest, static_cast<uint16_t>(Opcode::kSync), 1, {});
    entries.push_back({"decode", "strict_header_ok", WithSelector(1, frame)});
  }

  // -- framer corpus ---------------------------------------------------------

  // chunk-pattern prefix (see fuzz_framer.cc): k, k chunk bytes, stream.
  {
    std::vector<uint8_t> payload = EncodeStruct([] {
      ResourceReq req;
      req.id = 0x1000;
      return req;
    }());
    std::vector<uint8_t> frame1 = FrameMessage(
        MessageType::kRequest, static_cast<uint16_t>(Opcode::kStartQueue), 1, payload);
    std::vector<uint8_t> frame2 = FrameMessage(
        MessageType::kRequest, static_cast<uint16_t>(Opcode::kSync), 2, {});
    std::vector<uint8_t> stream;
    stream.push_back(3);  // pattern length
    stream.push_back(1);  // 2-byte chunks
    stream.push_back(5);  // 6-byte chunks
    stream.push_back(12); // 13-byte chunks
    stream.insert(stream.end(), frame1.begin(), frame1.end());
    stream.insert(stream.end(), frame2.begin(), frame2.end());
    entries.push_back({"framer", "two_frames_chunked", stream});
  }
  {
    // Whole-buffer reads, one frame, truncated payload (EOF mid-payload).
    WriteSoundDataReq req;
    req.id = 0x1000;
    req.offset = 0;
    req.data.assign(64, 0x5A);
    std::vector<uint8_t> frame = FrameMessage(
        MessageType::kRequest, static_cast<uint16_t>(Opcode::kWriteSoundData), 3,
        EncodeStruct(req));
    frame.resize(frame.size() - 16);
    std::vector<uint8_t> stream;
    stream.push_back(0);
    stream.insert(stream.end(), frame.begin(), frame.end());
    entries.push_back({"framer", "truncated_payload", stream});
  }
  {
    // Byte-at-a-time reads across an event frame.
    EventMessage event;
    event.type = EventType::kSyncMark;
    event.resource = 0x1000;
    SyncMarkArgs args;
    args.position_samples = 8000;
    args.total_samples = 16000;
    event.args = args.Encode();
    std::vector<uint8_t> frame = FrameMessage(
        MessageType::kEvent, static_cast<uint16_t>(EventType::kSyncMark), 4,
        EncodeStruct(event));
    std::vector<uint8_t> stream;
    stream.push_back(1);
    stream.push_back(0);  // chunk size 1
    stream.insert(stream.end(), frame.begin(), frame.end());
    entries.push_back({"framer", "event_byte_at_a_time", stream});
  }

  // -- roundtrip corpus ------------------------------------------------------

  // The roundtrip harness derives field values from its input; any bytes
  // are valid. Seed the interesting boundaries by hand.
  entries.push_back({"roundtrip", "zeros", std::vector<uint8_t>(64, 0)});
  entries.push_back({"roundtrip", "ones", std::vector<uint8_t>(256, 0xFF)});
  {
    std::vector<uint8_t> ramp(512);
    for (size_t i = 0; i < ramp.size(); ++i) {
      ramp[i] = static_cast<uint8_t>(i * 7 + 13);
    }
    entries.push_back({"roundtrip", "ramp", ramp});
  }
  entries.push_back({"roundtrip", "empty", {}});

  for (const Entry& entry : entries) {
    std::filesystem::path dir = root / entry.dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::filesystem::path path = dir / entry.name;
    if (!WriteFileBytes(path, entry.bytes)) {
      std::fprintf(stderr, "corpus_gen: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("corpus_gen: wrote %zu seed(s) under %s\n", entries.size(),
              root.c_str());
  return 0;
}
