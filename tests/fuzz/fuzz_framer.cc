// Framer fuzz harness: feeds arbitrary bytes through ReadMessage over a
// ByteStream that delivers them in input-derived chunk sizes, exercising the
// header/payload reassembly paths (short reads, payload split across reads,
// EOF mid-header, EOF mid-payload). Every message that does frame is then
// re-framed with WriteMessage and re-read; the result must be byte-identical
// — a framer that loses or duplicates bytes aborts here rather than
// corrupting a live connection. The same content is then parsed a second
// time through the resumable Framer::TryReadMessage with scripted
// would-block injections (the event-loop plane's read path); the message
// sequence must be identical to the blocking parse.
//
// Input shape: byte 0 = chunk-pattern length k (0 = whole-buffer reads),
// bytes 1..k = the repeating chunk-size pattern, the rest is stream content.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "src/transport/framer.h"
#include "src/transport/stream.h"

namespace aud {
namespace {

// In-memory ByteStream that serves a fixed buffer in scripted chunk sizes.
// Single-threaded by construction, so "blocking" degenerates to immediate
// EOF once the buffer is drained.
class ScriptedStream : public ByteStream {
 public:
  ScriptedStream(std::vector<uint8_t> data, std::vector<uint8_t> chunks)
      : data_(std::move(data)), chunks_(std::move(chunks)) {}

  bool Write(std::span<const uint8_t> bytes) override {
    written_.insert(written_.end(), bytes.begin(), bytes.end());
    return true;
  }

  size_t Read(std::span<uint8_t> out) override {
    size_t remaining = data_.size() - pos_;
    if (remaining == 0 || out.empty()) {
      return 0;
    }
    size_t want = out.size();
    if (!chunks_.empty()) {
      // Chunk sizes 1..16, repeating the scripted pattern.
      want = std::min(want, static_cast<size_t>(chunks_[next_chunk_ % chunks_.size()] % 16) + 1);
      ++next_chunk_;
    }
    size_t n = std::min(want, remaining);
    std::copy_n(data_.begin() + static_cast<ptrdiff_t>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }

  void Close() override { pos_ = data_.size(); }

  const std::vector<uint8_t>& written() const { return written_; }

 private:
  std::vector<uint8_t> data_;
  std::vector<uint8_t> chunks_;
  size_t pos_ = 0;
  size_t next_chunk_ = 0;
  std::vector<uint8_t> written_;
};

// The same scripted delivery through the non-blocking interface: chunk
// bytes with the high bit set inject a kWouldBlock (at most one in a row,
// so the incremental parse always makes progress and terminates). Once the
// buffer drains, ReadSome reports EOF like a closed socket.
class ScriptedNonBlockingStream : public ByteStream {
 public:
  ScriptedNonBlockingStream(std::vector<uint8_t> data, std::vector<uint8_t> chunks)
      : data_(std::move(data)), chunks_(std::move(chunks)) {}

  bool Write(std::span<const uint8_t> bytes) override {
    (void)bytes;
    return true;
  }

  size_t Read(std::span<uint8_t> out) override {
    (void)out;
    return 0;  // incremental path only
  }

  void Close() override { pos_ = data_.size(); }

  IoResult ReadSome(std::span<uint8_t> out) override {
    uint8_t script = chunks_.empty() ? 0 : chunks_[next_chunk_ % chunks_.size()];
    if (!chunks_.empty()) {
      ++next_chunk_;
    }
    if ((script & 0x80) != 0 && !blocked_) {
      blocked_ = true;
      return {IoStatus::kWouldBlock, 0};
    }
    blocked_ = false;
    size_t remaining = data_.size() - pos_;
    if (remaining == 0) {
      return {IoStatus::kEof, 0};
    }
    size_t want = out.size();
    if (!chunks_.empty()) {
      want = std::min(want, static_cast<size_t>(script % 16) + 1);
    }
    size_t n = std::min(want, remaining);
    std::copy_n(data_.begin() + static_cast<ptrdiff_t>(pos_), n, out.begin());
    pos_ += n;
    return {IoStatus::kOk, n};
  }

 private:
  std::vector<uint8_t> data_;
  std::vector<uint8_t> chunks_;
  size_t pos_ = 0;
  size_t next_chunk_ = 0;
  bool blocked_ = false;
};

bool SameMessage(const FramedMessage& a, const FramedMessage& b) {
  return a.header.type == b.header.type && a.header.code == b.header.code &&
         a.header.sequence == b.header.sequence &&
         a.header.length == b.header.length && a.payload == b.payload;
}

void CheckRoundTrip(const FramedMessage& msg) {
  // Re-frame and re-read through a fresh stream; the framer must reproduce
  // the message exactly.
  ScriptedStream echo({}, {});
  if (!WriteMessage(&echo, msg.header.type, msg.header.code, msg.header.sequence,
                    msg.payload)) {
    std::fprintf(stderr, "fuzz_framer: WriteMessage failed on in-memory stream\n");
    std::abort();
  }
  ScriptedStream reread(echo.written(), {3});  // deliberately misaligned reads
  std::optional<FramedMessage> again = ReadMessage(&reread);
  if (!again.has_value() || again->header.type != msg.header.type ||
      again->header.code != msg.header.code ||
      again->header.sequence != msg.header.sequence ||
      again->header.length != msg.header.length || again->payload != msg.payload) {
    std::fprintf(stderr, "fuzz_framer: WriteMessage/ReadMessage round-trip mismatch\n");
    std::abort();
  }
}

}  // namespace
}  // namespace aud

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) {
    return 0;
  }
  std::span<const uint8_t> input(data, size);
  size_t pattern_len = std::min<size_t>(input[0] % 8, input.size() - 1);
  std::vector<uint8_t> chunks(input.begin() + 1,
                              input.begin() + 1 + static_cast<ptrdiff_t>(pattern_len));
  std::vector<uint8_t> content(input.begin() + 1 + static_cast<ptrdiff_t>(pattern_len),
                               input.end());

  aud::ScriptedStream stream(content, chunks);
  // Each iteration consumes at least a header's worth of bytes or hits EOF /
  // a malformed header, so this terminates; the cap is belt and braces.
  std::vector<aud::FramedMessage> blocking_messages;
  for (int i = 0; i < 4096; ++i) {
    std::optional<aud::FramedMessage> msg = aud::ReadMessage(&stream);
    if (!msg.has_value()) {
      break;
    }
    aud::CheckRoundTrip(*msg);
    blocking_messages.push_back(std::move(*msg));
  }

  // The resumable framer over the same content must recover the identical
  // message sequence, no matter where the would-block injections land: the
  // loop-plane parse (DESIGN.md decision 14) and the legacy blocking parse
  // are the same protocol or one of them is wrong.
  aud::ScriptedNonBlockingStream nb(std::move(content), std::move(chunks));
  aud::Framer framer;
  std::vector<aud::FramedMessage> incremental_messages;
  bool dead = false;
  // Every iteration either delivers a message, consumes bytes, or flips the
  // one-shot would-block latch; the cap covers the worst interleaving.
  for (int i = 0; i < (1 << 20) && !dead; ++i) {
    aud::FramedMessage msg;
    switch (framer.TryReadMessage(&nb, &msg)) {
      case aud::FrameStatus::kMessage:
        incremental_messages.push_back(std::move(msg));
        break;
      case aud::FrameStatus::kWouldBlock:
        break;  // "wait for readiness": just try again
      case aud::FrameStatus::kEof:
      case aud::FrameStatus::kMalformed:
        dead = true;
        break;
    }
    if (incremental_messages.size() > blocking_messages.size()) {
      std::fprintf(stderr, "fuzz_framer: incremental parse produced extra messages\n");
      std::abort();
    }
  }
  if (!dead) {
    std::fprintf(stderr, "fuzz_framer: incremental parse failed to terminate\n");
    std::abort();
  }
  if (incremental_messages.size() != blocking_messages.size()) {
    std::fprintf(stderr,
                 "fuzz_framer: incremental parse found %zu messages, blocking found %zu\n",
                 incremental_messages.size(), blocking_messages.size());
    std::abort();
  }
  for (size_t i = 0; i < blocking_messages.size(); ++i) {
    if (!aud::SameMessage(blocking_messages[i], incremental_messages[i])) {
      std::fprintf(stderr, "fuzz_framer: incremental/blocking message %zu mismatch\n", i);
      std::abort();
    }
  }
  return 0;
}
