// Framer fuzz harness: feeds arbitrary bytes through ReadMessage over a
// ByteStream that delivers them in input-derived chunk sizes, exercising the
// header/payload reassembly paths (short reads, payload split across reads,
// EOF mid-header, EOF mid-payload). Every message that does frame is then
// re-framed with WriteMessage and re-read; the result must be byte-identical
// — a framer that loses or duplicates bytes aborts here rather than
// corrupting a live connection.
//
// Input shape: byte 0 = chunk-pattern length k (0 = whole-buffer reads),
// bytes 1..k = the repeating chunk-size pattern, the rest is stream content.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "src/transport/framer.h"
#include "src/transport/stream.h"

namespace aud {
namespace {

// In-memory ByteStream that serves a fixed buffer in scripted chunk sizes.
// Single-threaded by construction, so "blocking" degenerates to immediate
// EOF once the buffer is drained.
class ScriptedStream : public ByteStream {
 public:
  ScriptedStream(std::vector<uint8_t> data, std::vector<uint8_t> chunks)
      : data_(std::move(data)), chunks_(std::move(chunks)) {}

  bool Write(std::span<const uint8_t> bytes) override {
    written_.insert(written_.end(), bytes.begin(), bytes.end());
    return true;
  }

  size_t Read(std::span<uint8_t> out) override {
    size_t remaining = data_.size() - pos_;
    if (remaining == 0 || out.empty()) {
      return 0;
    }
    size_t want = out.size();
    if (!chunks_.empty()) {
      // Chunk sizes 1..16, repeating the scripted pattern.
      want = std::min(want, static_cast<size_t>(chunks_[next_chunk_ % chunks_.size()] % 16) + 1);
      ++next_chunk_;
    }
    size_t n = std::min(want, remaining);
    std::copy_n(data_.begin() + static_cast<ptrdiff_t>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }

  void Close() override { pos_ = data_.size(); }

  const std::vector<uint8_t>& written() const { return written_; }

 private:
  std::vector<uint8_t> data_;
  std::vector<uint8_t> chunks_;
  size_t pos_ = 0;
  size_t next_chunk_ = 0;
  std::vector<uint8_t> written_;
};

void CheckRoundTrip(const FramedMessage& msg) {
  // Re-frame and re-read through a fresh stream; the framer must reproduce
  // the message exactly.
  ScriptedStream echo({}, {});
  if (!WriteMessage(&echo, msg.header.type, msg.header.code, msg.header.sequence,
                    msg.payload)) {
    std::fprintf(stderr, "fuzz_framer: WriteMessage failed on in-memory stream\n");
    std::abort();
  }
  ScriptedStream reread(echo.written(), {3});  // deliberately misaligned reads
  std::optional<FramedMessage> again = ReadMessage(&reread);
  if (!again.has_value() || again->header.type != msg.header.type ||
      again->header.code != msg.header.code ||
      again->header.sequence != msg.header.sequence ||
      again->header.length != msg.header.length || again->payload != msg.payload) {
    std::fprintf(stderr, "fuzz_framer: WriteMessage/ReadMessage round-trip mismatch\n");
    std::abort();
  }
}

}  // namespace
}  // namespace aud

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) {
    return 0;
  }
  std::span<const uint8_t> input(data, size);
  size_t pattern_len = std::min<size_t>(input[0] % 8, input.size() - 1);
  std::vector<uint8_t> chunks(input.begin() + 1,
                              input.begin() + 1 + static_cast<ptrdiff_t>(pattern_len));
  std::vector<uint8_t> content(input.begin() + 1 + static_cast<ptrdiff_t>(pattern_len),
                               input.end());

  aud::ScriptedStream stream(std::move(content), std::move(chunks));
  // Each iteration consumes at least a header's worth of bytes or hits EOF /
  // a malformed header, so this terminates; the cap is belt and braces.
  for (int i = 0; i < 4096; ++i) {
    std::optional<aud::FramedMessage> msg = aud::ReadMessage(&stream);
    if (!msg.has_value()) {
      break;
    }
    aud::CheckRoundTrip(*msg);
  }
  return 0;
}
