// Unit tests for the DSP substrate: codecs, resampling, gain, mixing,
// tone generation, DTMF, AGC, pause detection.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/adpcm.h"
#include "src/dsp/agc.h"
#include "src/dsp/alaw.h"
#include "src/dsp/dtmf.h"
#include "src/dsp/encoding.h"
#include "src/dsp/gain.h"
#include "src/dsp/goertzel.h"
#include "src/dsp/mixer_kernel.h"
#include "src/dsp/mulaw.h"
#include "src/dsp/pause_detector.h"
#include "src/dsp/resampler.h"
#include "src/dsp/tone.h"

namespace aud {
namespace {

std::vector<Sample> Sine(double freq, uint32_t rate, int ms, double amp = 0.5) {
  std::vector<Sample> out;
  SineOscillator osc(freq, rate, amp);
  osc.Generate(static_cast<size_t>(rate) * ms / 1000, &out);
  return out;
}

double Rms(std::span<const Sample> s) {
  if (s.empty()) {
    return 0;
  }
  double acc = 0;
  for (Sample v : s) {
    acc += (v / 32768.0) * (v / 32768.0);
  }
  return std::sqrt(acc / s.size());
}

// ---------------------------------------------------------------------------
// G.711
// ---------------------------------------------------------------------------

TEST(MulawTest, ZeroRoundTripsToZero) { EXPECT_EQ(MulawDecode(MulawEncode(0)), 0); }

TEST(MulawTest, RoundTripErrorIsCompandingBounded) {
  // Mu-law quantization error grows with amplitude; relative error stays
  // under ~6% plus a small absolute floor.
  for (int v = -32000; v <= 32000; v += 97) {
    Sample decoded = MulawDecode(MulawEncode(static_cast<Sample>(v)));
    double tolerance = std::abs(v) * 0.06 + 64;
    EXPECT_NEAR(decoded, v, tolerance) << "at input " << v;
  }
}

TEST(MulawTest, MonotonicInMagnitude) {
  // Larger inputs never decode smaller (within one quantization step).
  Sample prev = MulawDecode(MulawEncode(0));
  for (int v = 0; v <= 32000; v += 61) {
    Sample cur = MulawDecode(MulawEncode(static_cast<Sample>(v)));
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MulawTest, SignSymmetry) {
  for (int v = 1; v <= 32000; v += 301) {
    Sample pos = MulawDecode(MulawEncode(static_cast<Sample>(v)));
    Sample neg = MulawDecode(MulawEncode(static_cast<Sample>(-v)));
    EXPECT_NEAR(pos, -neg, 1);
  }
}

TEST(MulawTest, BlockConversionMatchesScalar) {
  auto tone = Sine(440, 8000, 20);
  std::vector<uint8_t> encoded(tone.size());
  MulawEncodeBlock(tone, encoded);
  std::vector<Sample> decoded(tone.size());
  MulawDecodeBlock(encoded, decoded);
  for (size_t i = 0; i < tone.size(); ++i) {
    ASSERT_EQ(decoded[i], MulawDecode(MulawEncode(tone[i])));
  }
}

TEST(AlawTest, RoundTripErrorIsCompandingBounded) {
  for (int v = -32000; v <= 32000; v += 97) {
    Sample decoded = AlawDecode(AlawEncode(static_cast<Sample>(v)));
    double tolerance = std::abs(v) * 0.06 + 96;
    EXPECT_NEAR(decoded, v, tolerance) << "at input " << v;
  }
}

TEST(AlawTest, PreservesToneEnergy) {
  auto tone = Sine(1000, 8000, 50);
  std::vector<uint8_t> encoded(tone.size());
  AlawEncodeBlock(tone, encoded);
  std::vector<Sample> decoded(tone.size());
  AlawDecodeBlock(encoded, decoded);
  EXPECT_NEAR(Rms(decoded), Rms(tone), 0.02);
}

// ---------------------------------------------------------------------------
// ADPCM
// ---------------------------------------------------------------------------

TEST(AdpcmTest, HalvesDataRate) {
  auto tone = Sine(440, 8000, 100);
  AdpcmEncoder encoder;
  std::vector<uint8_t> encoded;
  encoder.Encode(tone, &encoded);
  EXPECT_EQ(encoded.size(), tone.size() / 2);
}

TEST(AdpcmTest, SpeechBandToneSurvivesRoundTrip) {
  auto tone = Sine(440, 8000, 100, 0.4);
  AdpcmEncoder encoder;
  std::vector<uint8_t> encoded;
  encoder.Encode(tone, &encoded);
  AdpcmDecoder decoder;
  std::vector<Sample> decoded;
  decoder.Decode(encoded, &decoded);
  ASSERT_EQ(decoded.size(), tone.size());
  // Skip the adaptation ramp-in, then compare energy in the body.
  auto body = std::span<const Sample>(tone).subspan(160);
  auto decoded_body = std::span<const Sample>(decoded).subspan(160);
  EXPECT_NEAR(Rms(decoded_body), Rms(body), 0.05);
}

TEST(AdpcmTest, StreamingMatchesOneShot) {
  auto tone = Sine(700, 8000, 60);
  AdpcmEncoder one_shot;
  std::vector<uint8_t> full;
  one_shot.Encode(tone, &full);

  AdpcmEncoder chunked;
  std::vector<uint8_t> pieces;
  for (size_t pos = 0; pos < tone.size(); pos += 100) {
    size_t n = std::min<size_t>(100, tone.size() - pos);
    chunked.Encode(std::span<const Sample>(tone).subspan(pos, n), &pieces);
  }
  EXPECT_EQ(pieces, full);
}

TEST(AdpcmTest, ResetRestartsPredictor) {
  auto tone = Sine(440, 8000, 20);
  AdpcmEncoder encoder;
  std::vector<uint8_t> a;
  encoder.Encode(tone, &a);
  encoder.Reset();
  std::vector<uint8_t> b;
  encoder.Encode(tone, &b);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Encoding dispatch
// ---------------------------------------------------------------------------

class EncodingRoundTrip : public ::testing::TestWithParam<Encoding> {};

TEST_P(EncodingRoundTrip, ToneEnergySurvives) {
  auto tone = Sine(440, 8000, 100, 0.4);
  StreamEncoder encoder(GetParam());
  std::vector<uint8_t> bytes;
  encoder.Encode(tone, &bytes);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            BytesForSamples(GetParam(), static_cast<int64_t>(tone.size())));

  StreamDecoder decoder(GetParam());
  std::vector<Sample> decoded;
  decoder.Decode(bytes, &decoded);
  ASSERT_EQ(static_cast<int64_t>(decoded.size()),
            SamplesInBytes(GetParam(), static_cast<int64_t>(bytes.size())));
  // Skip the first 20 ms (codec adaptation ramp-in for ADPCM).
  auto body = std::span<const Sample>(decoded).subspan(160);
  EXPECT_NEAR(Rms(body), 0.4 / std::sqrt(2.0), 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingRoundTrip,
                         ::testing::Values(Encoding::kMulaw8, Encoding::kAlaw8,
                                           Encoding::kPcm8, Encoding::kPcm16,
                                           Encoding::kAdpcm4),
                         [](const auto& param_info) {
                           return std::string(EncodingName(param_info.param));
                         });

TEST(EncodingTest, Pcm16IsLossless) {
  auto tone = Sine(333, 8000, 30);
  StreamEncoder encoder(Encoding::kPcm16);
  std::vector<uint8_t> bytes;
  encoder.Encode(tone, &bytes);
  StreamDecoder decoder(Encoding::kPcm16);
  std::vector<Sample> decoded;
  decoder.Decode(bytes, &decoded);
  EXPECT_EQ(decoded, tone);
}

TEST(EncodingTest, BytesPerSecondMatchesPaperRates) {
  // Section 1.1: telephone quality = 8000 bytes/sec.
  EXPECT_EQ(kTelephoneFormat.BytesPerSecond(), 8000);
  // CD-quality mono at 44.1kHz/16-bit = 88200; the paper's 175 kB/s figure
  // is the stereo pair.
  AudioFormat cd{Encoding::kPcm16, kCdRateHz};
  EXPECT_EQ(2 * cd.BytesPerSecond(), 176400);
}

TEST(EncodingTest, RationalByteMathIsExactAtAdpcmBoundaries) {
  AudioFormat adpcm{Encoding::kAdpcm4, 8000};
  // 4-bit ADPCM: two samples per byte, exact as a ratio.
  ByteRatio rate = adpcm.BytesPerSecondRatio();
  EXPECT_EQ(rate.num, 8000);
  EXPECT_EQ(rate.den, 2);
  EXPECT_EQ(adpcm.BytesPerSecond(), 4000);
  // Odd sample counts round *up* to a whole byte (the half-filled byte is
  // still stored)…
  EXPECT_EQ(adpcm.BytesForSamples(7), 4);
  EXPECT_EQ(EncodedBytesForSamples(Encoding::kAdpcm4, 1), 1);
  // …while byte counts round *down* to whole samples for 16-bit PCM.
  EXPECT_EQ(WholeSamplesInBytes(Encoding::kPcm16, 5), 2);
  EXPECT_EQ(WholeSamplesInBytes(Encoding::kAdpcm4, 3), 6);
  // An odd-rate ADPCM format has no whole bytes/sec; the integer helper
  // rounds up.
  AudioFormat odd{Encoding::kAdpcm4, 11025};
  EXPECT_EQ(odd.BytesPerSecond(), 5513);
}

// ---------------------------------------------------------------------------
// Resampler
// ---------------------------------------------------------------------------

TEST(ResamplerTest, IdentityPassesThrough) {
  auto tone = Sine(440, 8000, 10);
  Resampler resampler(8000, 8000);
  std::vector<Sample> out;
  resampler.Process(tone, &out);
  EXPECT_EQ(out, tone);
}

TEST(ResamplerTest, DownsampleProducesExpectedCount) {
  auto tone = Sine(440, 16000, 1000);
  Resampler resampler(16000, 8000);
  std::vector<Sample> out;
  resampler.Process(tone, &out);
  EXPECT_NEAR(static_cast<double>(out.size()), 8000.0, 4.0);
}

TEST(ResamplerTest, UpsampleProducesExpectedCount) {
  auto tone = Sine(440, 8000, 1000);
  Resampler resampler(8000, 44100);
  std::vector<Sample> out;
  resampler.Process(tone, &out);
  EXPECT_NEAR(static_cast<double>(out.size()), 44100.0, 8.0);
}

TEST(ResamplerTest, ChunkedMatchesOneShot) {
  auto tone = Sine(440, 8000, 200);
  Resampler one(8000, 11025);
  std::vector<Sample> full;
  one.Process(tone, &full);

  Resampler chunked(8000, 11025);
  std::vector<Sample> pieces;
  for (size_t pos = 0; pos < tone.size(); pos += 37) {
    size_t n = std::min<size_t>(37, tone.size() - pos);
    chunked.Process(std::span<const Sample>(tone).subspan(pos, n), &pieces);
  }
  EXPECT_EQ(pieces, full);
}

TEST(ResamplerTest, PreservesToneFrequency) {
  // A 440 Hz tone resampled 8k->16k must still be 440 Hz (Goertzel check).
  auto tone = Sine(440, 8000, 500);
  Resampler resampler(8000, 16000);
  std::vector<Sample> out;
  resampler.Process(tone, &out);
  double at_target = GoertzelPower(out, 440, 16000);
  double off_target = GoertzelPower(out, 880, 16000);
  EXPECT_GT(at_target, 0.1);
  EXPECT_LT(off_target, at_target / 20);
}

// ---------------------------------------------------------------------------
// Gain & mixing
// ---------------------------------------------------------------------------

TEST(GainTest, UnityIsNoOp) {
  auto tone = Sine(440, 8000, 10);
  auto copy = tone;
  ApplyGain(copy, kUnityGain);
  EXPECT_EQ(copy, tone);
}

TEST(GainTest, HalfGainHalvesSamples) {
  std::vector<Sample> samples = {1000, -2000, 30000};
  ApplyGain(samples, kUnityGain / 2);
  EXPECT_EQ(samples[0], 500);
  EXPECT_EQ(samples[1], -1000);
  EXPECT_EQ(samples[2], 15000);
}

TEST(GainTest, BoostSaturatesNotWraps) {
  std::vector<Sample> samples = {30000, -30000};
  ApplyGain(samples, 2 * kUnityGain);
  EXPECT_EQ(samples[0], 32767);
  EXPECT_EQ(samples[1], -32768);
}

TEST(GainTest, DecibelConversion) {
  EXPECT_EQ(DecibelsToGain(0.0), kUnityGain);
  EXPECT_NEAR(DecibelsToGain(-6.0), kUnityGain / 2, 100);
  EXPECT_NEAR(DecibelsToGain(-20.0), kUnityGain / 10, 10);
}

TEST(GainTest, RampEndsAtTargets) {
  std::vector<Sample> samples(100, 10000);
  ApplyGainRamp(samples, 0, kUnityGain);
  EXPECT_EQ(samples.front(), 0);
  EXPECT_EQ(samples.back(), 10000);
  // Monotone non-decreasing.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i], samples[i - 1]);
  }
}

TEST(MixerKernelTest, TwoStreamsSum) {
  MixAccumulator acc(4);
  std::vector<Sample> a = {100, 200, 300, 400};
  std::vector<Sample> b = {10, 20, 30, 40};
  acc.Accumulate(a, kUnityGain);
  acc.Accumulate(b, kUnityGain);
  std::vector<Sample> out(4);
  acc.Resolve(out);
  EXPECT_EQ(out, (std::vector<Sample>{110, 220, 330, 440}));
  EXPECT_EQ(acc.input_count(), 2);
}

TEST(MixerKernelTest, GainWeightsInputs) {
  MixAccumulator acc(2);
  std::vector<Sample> a = {1000, 1000};
  acc.Accumulate(a, kUnityGain / 4);
  std::vector<Sample> out(2);
  acc.Resolve(out);
  EXPECT_EQ(out[0], 250);
}

TEST(MixerKernelTest, MixSaturates) {
  MixAccumulator acc(1);
  std::vector<Sample> loud = {30000};
  acc.Accumulate(loud, kUnityGain);
  acc.Accumulate(loud, kUnityGain);
  std::vector<Sample> out(1);
  acc.Resolve(out);
  EXPECT_EQ(out[0], 32767);
}

TEST(MixerKernelTest, ShortInputContributesSilenceTail) {
  MixAccumulator acc(4);
  std::vector<Sample> a = {5, 5};
  acc.Accumulate(a, kUnityGain);
  std::vector<Sample> out(4);
  acc.Resolve(out);
  EXPECT_EQ(out, (std::vector<Sample>{5, 5, 0, 0}));
}

// ---------------------------------------------------------------------------
// Tones, Goertzel & DTMF
// ---------------------------------------------------------------------------

TEST(GoertzelTest, DetectsTargetFrequency) {
  auto tone = Sine(1000, 8000, 50, 1.0);
  EXPECT_NEAR(GoertzelPower(tone, 1000, 8000), 1.0, 0.1);
  EXPECT_LT(GoertzelPower(tone, 2000, 8000), 0.01);
}

TEST(ToneTest, OscillatorPhaseContinuousAcrossBlocks) {
  SineOscillator whole(500, 8000, 0.5);
  std::vector<Sample> full;
  whole.Generate(800, &full);

  SineOscillator split(500, 8000, 0.5);
  std::vector<Sample> pieces;
  split.Generate(300, &pieces);
  split.Generate(500, &pieces);
  EXPECT_EQ(pieces, full);
}

TEST(ToneTest, DialToneIsContinuous) {
  ProgressToneGenerator gen(ProgressTone::kDialTone, 8000);
  std::vector<Sample> out;
  gen.Generate(8000, &out);
  EXPECT_GT(Rms(out), 0.2);
  EXPECT_GT(GoertzelPower(out, 350, 8000), 0.05);
  EXPECT_GT(GoertzelPower(out, 440, 8000), 0.05);
}

TEST(ToneTest, BusyToneHasCadence) {
  ProgressToneGenerator gen(ProgressTone::kBusy, 8000);
  std::vector<Sample> out;
  gen.Generate(8000, &out);  // 1 s: 0.5 on / 0.5 off
  double first_half = Rms(std::span<const Sample>(out).first(4000));
  double second_half = Rms(std::span<const Sample>(out).subspan(4000));
  EXPECT_GT(first_half, 0.2);
  EXPECT_LT(second_half, 0.01);
}

TEST(ToneTest, RingbackCadenceTwoOnFourOff) {
  ProgressToneGenerator gen(ProgressTone::kRingback, 8000);
  std::vector<Sample> out;
  gen.Generate(6 * 8000, &out);
  EXPECT_GT(Rms(std::span<const Sample>(out).first(16000)), 0.2);
  EXPECT_LT(Rms(std::span<const Sample>(out).subspan(16000)), 0.01);
}

TEST(ToneTest, BeepHasRampsAndBody) {
  auto beep = MakeBeep(8000, 250);
  ASSERT_EQ(beep.size(), 2000u);
  EXPECT_EQ(beep.front(), 0);  // attack ramp starts silent
  EXPECT_GT(Rms(beep), 0.2);
}

TEST(DtmfTest, AllSixteenDigitsHaveFrequencies) {
  const std::string digits = "0123456789ABCD*#";
  for (char d : digits) {
    double row;
    double col;
    EXPECT_TRUE(IsDtmfDigit(d));
    EXPECT_TRUE(DtmfFrequencies(d, &row, &col)) << d;
    EXPECT_GT(row, 600);
    EXPECT_GT(col, 1200);
  }
  EXPECT_FALSE(IsDtmfDigit('x'));
}

TEST(DtmfTest, GeneratorDetectorRoundTrip) {
  const std::string digits = "18005551234#";
  auto audio = MakeDtmfString(digits, 8000);
  DtmfDetector detector(8000);
  detector.Process(audio);
  EXPECT_EQ(detector.TakeDigits(), digits);
}

TEST(DtmfTest, DetectorIgnoresSpeechLikeTone) {
  auto tone = Sine(440, 8000, 500, 0.5);
  DtmfDetector detector(8000);
  detector.Process(tone);
  EXPECT_EQ(detector.TakeDigits(), "");
}

TEST(DtmfTest, RepeatedDigitWithGapDetectedTwice) {
  auto once = MakeDtmfDigit('5', 8000);
  std::vector<Sample> twice = once;
  twice.insert(twice.end(), once.begin(), once.end());
  DtmfDetector detector(8000);
  detector.Process(twice);
  EXPECT_EQ(detector.TakeDigits(), "55");
}

TEST(DtmfTest, DetectorSurvivesModerateNoise) {
  auto audio = MakeDtmfString("911", 8000);
  uint32_t seed = 12345;
  for (Sample& s : audio) {
    seed = seed * 1103515245 + 12345;
    int noise = static_cast<int>((seed >> 16) % 2048) - 1024;
    int v = s + noise;
    s = static_cast<Sample>(std::clamp(v, -32768, 32767));
  }
  DtmfDetector detector(8000);
  detector.Process(audio);
  EXPECT_EQ(detector.TakeDigits(), "911");
}

// ---------------------------------------------------------------------------
// AGC & pause detection
// ---------------------------------------------------------------------------

TEST(AgcTest, BoostsQuietSignalTowardTarget) {
  auto quiet = Sine(440, 8000, 3000, 0.05);
  AutomaticGainControl agc;
  agc.Process(quiet);
  auto tail = std::span<const Sample>(quiet).subspan(quiet.size() - 4000);
  EXPECT_GT(Rms(tail), 0.15);
  EXPECT_GT(agc.current_gain(), 2.0);
}

TEST(AgcTest, DoesNotAmplifySilence) {
  std::vector<Sample> silence(8000, 0);
  AutomaticGainControl agc;
  agc.Process(silence);
  EXPECT_NEAR(agc.current_gain(), 1.0, 0.01);
}

TEST(AgcTest, TamesLoudSignal) {
  auto loud = Sine(440, 8000, 3000, 0.95);
  AutomaticGainControl agc;
  agc.Process(loud);
  EXPECT_LT(agc.current_gain(), 1.0);
}

TEST(PauseDetectorTest, FiresAfterConfiguredSilence) {
  PauseDetector detector(8000);  // default: 1.5 s pause
  auto speech = Sine(300, 8000, 500, 0.3);
  EXPECT_FALSE(detector.Process(speech));
  std::vector<Sample> silence(8000, 0);  // 1 s: not enough
  EXPECT_FALSE(detector.Process(silence));
  EXPECT_TRUE(detector.Process(silence));  // 2 s total: pause
  EXPECT_TRUE(detector.pause_detected());
}

TEST(PauseDetectorTest, SpeechResetsSilenceRun) {
  PauseDetector detector(8000, {.frame_ms = 20, .silence_threshold = 0.01, .pause_ms = 1000});
  std::vector<Sample> silence(7200, 0);  // 0.9 s
  auto blip = Sine(300, 8000, 100, 0.3);
  detector.Process(silence);
  detector.Process(blip);
  EXPECT_FALSE(detector.Process(silence));  // run restarted
  EXPECT_EQ(detector.trailing_silence_ms(), 900);
}

TEST(PauseDetectorTest, ResetClearsLatch) {
  PauseDetector detector(8000, {.frame_ms = 20, .silence_threshold = 0.01, .pause_ms = 100});
  std::vector<Sample> silence(1600, 0);
  EXPECT_TRUE(detector.Process(silence));
  detector.Reset();
  EXPECT_FALSE(detector.pause_detected());
}

TEST(PauseCompressionTest, RemovesLongSilences) {
  // speech(0.5s) + silence(2s) + speech(0.5s)
  auto speech = Sine(300, 8000, 500, 0.3);
  std::vector<Sample> in = speech;
  in.insert(in.end(), 16000, 0);
  in.insert(in.end(), speech.begin(), speech.end());

  auto out = CompressPauses(in, 8000);
  // 2 s of silence collapses to ~150 ms; speech retained.
  EXPECT_LT(out.size(), in.size() - 12000);
  EXPECT_GT(out.size(), 2 * speech.size());
}

TEST(PauseCompressionTest, PureSpeechUntouched) {
  auto speech = Sine(300, 8000, 1000, 0.3);
  auto out = CompressPauses(speech, 8000);
  EXPECT_EQ(out.size(), speech.size());
}

}  // namespace
}  // namespace aud
