// Connection-lifecycle robustness: the bounded egress queue and its
// overflow policies, transient accept(2) retry, telephone hang-up when the
// owning client dies, and Alib's resilience knobs (connect retry, RPC
// deadlines, clean errors when the server goes away). One sick or dead
// client must never take the server — or the phone line — down with it.

#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "src/server/connection.h"
#include "src/server/egress_queue.h"
#include "src/transport/pipe_stream.h"
#include "src/transport/socket_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

// kHeaderSize is 12; a 38-byte payload makes every frame exactly 50 bytes,
// so a 100-byte budget fits two frames.
EgressFrame Frame(MessageType type, uint16_t code, size_t payload_bytes = 38) {
  EgressFrame frame;
  frame.type = type;
  frame.code = code;
  frame.payload.assign(payload_bytes, 0xCD);
  return frame;
}

TEST(EgressQueueTest, DeliversInOrderThenDrains) {
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kError, 3)).status,
            EgressPushStatus::kQueued);
  queue.BeginDrain();
  // Push after drain is rejected, but the backlog still flushes in order.
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 4)).status,
            EgressPushStatus::kClosed);
  EgressFrame out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 3);
  EXPECT_FALSE(queue.Pop(&out));  // drained
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, ShedsOldestEventsToFitNewFrames) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  // Budget full (2 x 50 bytes). A reply pushes out the oldest event only.
  EgressPushResult result = queue.Push(Frame(MessageType::kReply, 3));
  EXPECT_EQ(result.status, EgressPushStatus::kQueued);
  EXPECT_EQ(result.dropped_events, 1u);
  EXPECT_EQ(queue.dropped_events_total(), 1u);
  EgressFrame out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 2);  // event 1 was shed
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 3);
}

TEST(EgressQueueTest, ReplyBacklogOverflowsEvenWhenDroppingEvents) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 2)).status,
            EgressPushStatus::kQueued);
  // Nothing sheddable: the client has stopped reading replies.
  EgressPushResult result = queue.Push(Frame(MessageType::kReply, 3));
  EXPECT_EQ(result.status, EgressPushStatus::kOverflow);
  EXPECT_EQ(result.dropped_events, 0u);
}

TEST(EgressQueueTest, DisconnectPolicyOverflowsWithoutShedding) {
  EgressQueue queue(100, EgressOverflowPolicy::kDisconnect);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kEvent, 3)).status,
            EgressPushStatus::kOverflow);
  EXPECT_EQ(queue.dropped_events_total(), 0u);
  EXPECT_EQ(queue.queued_bytes(), 100u);  // backlog untouched
}

TEST(EgressQueueTest, OversizedEventDropsItself) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  // An event bigger than the whole budget can never fit; it is shed on
  // arrival (counted) without failing the connection.
  EgressPushResult result = queue.Push(Frame(MessageType::kEvent, 1, 200));
  EXPECT_EQ(result.status, EgressPushStatus::kQueued);
  EXPECT_EQ(result.dropped_events, 1u);
  EXPECT_EQ(queue.dropped_events_total(), 1u);
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, CloseNowDiscardsBacklog) {
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  queue.CloseNow();
  EgressFrame out;
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 2)).status,
            EgressPushStatus::kClosed);
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, GaugeMirrorsBacklog) {
  obs::Gauge gauge;
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  queue.set_bytes_gauge(&gauge);
  queue.Push(Frame(MessageType::kReply, 1));
  queue.Push(Frame(MessageType::kEvent, 2));
  EXPECT_EQ(gauge.value(), 100);
  EgressFrame out;
  queue.Pop(&out);
  EXPECT_EQ(gauge.value(), 50);
  queue.CloseNow();  // discard zeroes the gauge
  EXPECT_EQ(gauge.value(), 0);
}

// -- ClientConnection: overflow policy wiring --------------------------------

TEST(ConnectionEgressTest, SlowClientDisconnectPolicyCutsConnection) {
  // No writer thread started: frames pile up as they would behind a client
  // that never reads.
  auto [client_end, server_end] = CreatePipePair();
  ClientConnection conn(0, std::move(server_end), /*egress_budget_bytes=*/128,
                        EgressOverflowPolicy::kDisconnect);
  ServerMetrics metrics;
  conn.set_metrics(&metrics);

  std::vector<uint8_t> payload(52);  // 64-byte frames; two fit in 128
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 1, payload));
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 2, payload));
  EXPECT_FALSE(conn.Send(MessageType::kReply, 1, 3, payload));
  EXPECT_TRUE(conn.closed());
  EXPECT_EQ(metrics.egress_disconnects.value(), 1u);
  // Once cut, further sends fail fast without touching the queue.
  EXPECT_FALSE(conn.Send(MessageType::kReply, 1, 4, payload));
  EXPECT_EQ(metrics.egress_disconnects.value(), 1u);
}

TEST(ConnectionEgressTest, EventSheddingCountsButNeverFailsSend) {
  auto [client_end, server_end] = CreatePipePair();
  ClientConnection conn(0, std::move(server_end), /*egress_budget_bytes=*/128,
                        EgressOverflowPolicy::kDropEvents);
  ServerMetrics metrics;
  conn.set_metrics(&metrics);

  std::vector<uint8_t> payload(52);
  // A reply occupies half the budget and is undroppable.
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 1, payload));
  // Events beyond the remaining budget shed older events, never fail.
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(conn.Send(MessageType::kEvent, 7, i, payload));
  }
  EXPECT_EQ(conn.events_dropped(), 9u);  // one event still queued
  EXPECT_EQ(metrics.events_dropped.value(), 9u);
  EXPECT_EQ(metrics.egress_disconnects.value(), 0u);
  EXPECT_FALSE(conn.closed());
}

// -- Server-level lifecycle ---------------------------------------------------

class LifecycleTest : public ServerFixture {};

TEST_F(LifecycleTest, AcceptRetriesTransientErrnosAndSurvives) {
  // Inject a burst of transient accept failures before the accept thread
  // starts; the listener must retry through all of them and then accept a
  // real client.
  server_->listener_for_test().InjectAcceptErrnosForTest(
      {EINTR, ECONNABORTED, EMFILE, ENFILE, ENOBUFS});
  ASSERT_TRUE(server_->ListenTcp(0));
  auto client = AudioConnection::OpenTcp("127.0.0.1", server_->tcp_port(), "survivor");
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Sync().ok());
  EXPECT_EQ(server_->listener_for_test().accept_retries(), 5u);
  // The retry counter is mirrored into the stats reply.
  auto stats = client->GetServerStats(false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().accept_retries, 5u);
}

TEST_F(LifecycleTest, ClientDeathHangsUpOwnedTelephone) {
  FarEndParty* callee = board_->AddFarEnd("555-9999");
  callee->AnswerAfterRings(1);

  auto owner = Connect("phone-owner");
  ASSERT_NE(owner, nullptr);
  ResourceId loud = owner->CreateLoud(kNoResource, {});
  ResourceId telephone = owner->CreateDevice(loud, DeviceClass::kTelephone, {});
  owner->MapLoud(loud);
  owner->Enqueue(loud, {DialCommand(telephone, "555-9999", 1)});
  owner->StartQueue(loud);
  ASSERT_TRUE(owner->Sync().ok());

  PhoneLineUnit* line = board_->phone_lines()[0];
  // Line state is mutated under the big lock (engine tick and disconnect
  // reclamation both hold it), so observe it the same way.
  auto line_state = [&] {
    MutexLock lock(&server_->mutex());
    return line->line_state();
  };
  for (int i = 0; i < 600 && line_state() != LineState::kConnected; ++i) {
    StepMs(20);
  }
  ASSERT_EQ(line_state(), LineState::kConnected);

  // The owner dies mid-call. Disconnect reclamation must put the line
  // back on hook — a dead client cannot hold a phone call open.
  owner->Close();
  for (int i = 0; i < 200 && line_state() != LineState::kOnHook; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StepMs(20);
  }
  EXPECT_EQ(line_state(), LineState::kOnHook);
}

TEST_F(LifecycleTest, RpcDeadlineSurfacesTimeout) {
  client_->set_rpc_deadline_ms(50);
  Result<ServerStatsReply> result = [&] {
    // Stall the dispatcher by holding the big lock across the round-trip;
    // the client-side deadline must fire instead of blocking forever.
    MutexLock lock(&server_->mutex());
    return client_->GetServerStats(false);
  }();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  // The connection itself is still healthy once the server catches up.
  client_->set_rpc_deadline_ms(0);
  EXPECT_TRUE(client_->Sync().ok());
}

TEST_F(LifecycleTest, ServerShutdownSurfacesConnectionError) {
  auto doomed = Connect("doomed");
  ASSERT_NE(doomed, nullptr);
  ASSERT_TRUE(doomed->Sync().ok());
  server_->Shutdown();
  // In-flight and future round-trips fail with kConnection, not a hang.
  Status status = doomed->Sync();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kConnection);
}

TEST(ConnectRetryTest, GivesUpAfterConfiguredAttempts) {
  // Reserve an ephemeral port, then close the listener: connects now fail
  // fast with ECONNREFUSED.
  uint16_t dead_port;
  {
    SocketListener probe;
    ASSERT_TRUE(probe.Listen(0));
    dead_port = probe.port();
  }
  ConnectRetryOptions retry;
  retry.attempts = 3;
  retry.backoff_ms = 2;
  retry.max_backoff_ms = 4;
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", dead_port, "late", retry);
  EXPECT_EQ(conn, nullptr);
}

TEST(ConnectRetryTest, ConnectsOnceServerComesUp) {
  // Reserve a port, bring the server up on it only after a delay, and let
  // the retry loop ride out the refused connects in between.
  uint16_t port;
  {
    SocketListener probe;
    ASSERT_TRUE(probe.Listen(0));
    port = probe.port();
  }
  Board board{BoardConfig{}};
  AudioServer server(&board);
  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    server.ListenTcp(port);
    server.StartRealtime();
  });
  ConnectRetryOptions retry;
  retry.attempts = 50;
  retry.backoff_ms = 20;
  retry.max_backoff_ms = 40;
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port, "early-bird", retry);
  late_start.join();
  if (server.tcp_port() == 0) {
    GTEST_SKIP() << "reserved port was taken by another process";
  }
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->Sync().ok());
  conn.reset();
  server.Shutdown();
}

}  // namespace
}  // namespace aud
