// Connection-lifecycle robustness: the bounded egress queue and its
// overflow policies, transient accept(2) retry, telephone hang-up when the
// owning client dies, and Alib's resilience knobs (connect retry, RPC
// deadlines, clean errors when the server goes away). One sick or dead
// client must never take the server — or the phone line — down with it.
// The overload-protection suite (DESIGN.md decision 15) exercises
// admission control, token-bucket rate limiting, per-client quotas,
// connection reaping, and the SIGTERM graceful drain.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "src/server/connection.h"
#include "src/server/egress_queue.h"
#include "src/transport/pipe_stream.h"
#include "src/transport/socket_stream.h"
#include "tests/server_fixture.h"

namespace aud {
namespace {

// kHeaderSize is 12; a 38-byte payload makes every frame exactly 50 bytes,
// so a 100-byte budget fits two frames.
EgressFrame Frame(MessageType type, uint16_t code, size_t payload_bytes = 38) {
  EgressFrame frame;
  frame.type = type;
  frame.code = code;
  frame.payload.assign(payload_bytes, 0xCD);
  return frame;
}

TEST(EgressQueueTest, DeliversInOrderThenDrains) {
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kError, 3)).status,
            EgressPushStatus::kQueued);
  queue.BeginDrain();
  // Push after drain is rejected, but the backlog still flushes in order.
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 4)).status,
            EgressPushStatus::kClosed);
  EgressFrame out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 3);
  EXPECT_FALSE(queue.Pop(&out));  // drained
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, ShedsOldestEventsToFitNewFrames) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  // Budget full (2 x 50 bytes). A reply pushes out the oldest event only.
  EgressPushResult result = queue.Push(Frame(MessageType::kReply, 3));
  EXPECT_EQ(result.status, EgressPushStatus::kQueued);
  EXPECT_EQ(result.dropped_events, 1u);
  EXPECT_EQ(queue.dropped_events_total(), 1u);
  EgressFrame out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 2);  // event 1 was shed
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.code, 3);
}

TEST(EgressQueueTest, ReplyBacklogOverflowsEvenWhenDroppingEvents) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 2)).status,
            EgressPushStatus::kQueued);
  // Nothing sheddable: the client has stopped reading replies.
  EgressPushResult result = queue.Push(Frame(MessageType::kReply, 3));
  EXPECT_EQ(result.status, EgressPushStatus::kOverflow);
  EXPECT_EQ(result.dropped_events, 0u);
}

TEST(EgressQueueTest, DisconnectPolicyOverflowsWithoutShedding) {
  EgressQueue queue(100, EgressOverflowPolicy::kDisconnect);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 1)).status,
            EgressPushStatus::kQueued);
  ASSERT_EQ(queue.Push(Frame(MessageType::kEvent, 2)).status,
            EgressPushStatus::kQueued);
  EXPECT_EQ(queue.Push(Frame(MessageType::kEvent, 3)).status,
            EgressPushStatus::kOverflow);
  EXPECT_EQ(queue.dropped_events_total(), 0u);
  EXPECT_EQ(queue.queued_bytes(), 100u);  // backlog untouched
}

TEST(EgressQueueTest, OversizedEventDropsItself) {
  EgressQueue queue(100, EgressOverflowPolicy::kDropEvents);
  // An event bigger than the whole budget can never fit; it is shed on
  // arrival (counted) without failing the connection.
  EgressPushResult result = queue.Push(Frame(MessageType::kEvent, 1, 200));
  EXPECT_EQ(result.status, EgressPushStatus::kQueued);
  EXPECT_EQ(result.dropped_events, 1u);
  EXPECT_EQ(queue.dropped_events_total(), 1u);
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, CloseNowDiscardsBacklog) {
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  ASSERT_EQ(queue.Push(Frame(MessageType::kReply, 1)).status,
            EgressPushStatus::kQueued);
  queue.CloseNow();
  EgressFrame out;
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.Push(Frame(MessageType::kReply, 2)).status,
            EgressPushStatus::kClosed);
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(EgressQueueTest, GaugeMirrorsBacklog) {
  obs::Gauge gauge;
  EgressQueue queue(1024, EgressOverflowPolicy::kDropEvents);
  queue.set_bytes_gauge(&gauge);
  queue.Push(Frame(MessageType::kReply, 1));
  queue.Push(Frame(MessageType::kEvent, 2));
  EXPECT_EQ(gauge.value(), 100);
  EgressFrame out;
  queue.Pop(&out);
  EXPECT_EQ(gauge.value(), 50);
  queue.CloseNow();  // discard zeroes the gauge
  EXPECT_EQ(gauge.value(), 0);
}

// -- ClientConnection: overflow policy wiring --------------------------------

TEST(ConnectionEgressTest, SlowClientDisconnectPolicyCutsConnection) {
  // No writer thread started: frames pile up as they would behind a client
  // that never reads.
  auto [client_end, server_end] = CreatePipePair();
  ClientConnection conn(0, std::move(server_end), /*egress_budget_bytes=*/128,
                        EgressOverflowPolicy::kDisconnect);
  ServerMetrics metrics;
  conn.set_metrics(&metrics);

  std::vector<uint8_t> payload(52);  // 64-byte frames; two fit in 128
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 1, payload));
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 2, payload));
  EXPECT_FALSE(conn.Send(MessageType::kReply, 1, 3, payload));
  EXPECT_TRUE(conn.closed());
  EXPECT_EQ(metrics.egress_disconnects.value(), 1u);
  // Once cut, further sends fail fast without touching the queue.
  EXPECT_FALSE(conn.Send(MessageType::kReply, 1, 4, payload));
  EXPECT_EQ(metrics.egress_disconnects.value(), 1u);
}

TEST(ConnectionEgressTest, EventSheddingCountsButNeverFailsSend) {
  auto [client_end, server_end] = CreatePipePair();
  ClientConnection conn(0, std::move(server_end), /*egress_budget_bytes=*/128,
                        EgressOverflowPolicy::kDropEvents);
  ServerMetrics metrics;
  conn.set_metrics(&metrics);

  std::vector<uint8_t> payload(52);
  // A reply occupies half the budget and is undroppable.
  EXPECT_TRUE(conn.Send(MessageType::kReply, 1, 1, payload));
  // Events beyond the remaining budget shed older events, never fail.
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(conn.Send(MessageType::kEvent, 7, i, payload));
  }
  EXPECT_EQ(conn.events_dropped(), 9u);  // one event still queued
  EXPECT_EQ(metrics.events_dropped.value(), 9u);
  EXPECT_EQ(metrics.egress_disconnects.value(), 0u);
  EXPECT_FALSE(conn.closed());
}

// -- Server-level lifecycle ---------------------------------------------------

class LifecycleTest : public ServerFixture {};

TEST_F(LifecycleTest, AcceptRetriesTransientErrnosAndSurvives) {
  // Inject a burst of transient accept failures before the accept thread
  // starts; the listener must retry through all of them and then accept a
  // real client.
  server_->listener_for_test().InjectAcceptErrnosForTest(
      {EINTR, ECONNABORTED, EMFILE, ENFILE, ENOBUFS});
  ASSERT_TRUE(server_->ListenTcp(0));
  auto client = AudioConnection::OpenTcp("127.0.0.1", server_->tcp_port(), "survivor");
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Sync().ok());
  EXPECT_EQ(server_->listener_for_test().accept_retries(), 5u);
  // The retry counter is mirrored into the stats reply.
  auto stats = client->GetServerStats(false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().accept_retries, 5u);
}

TEST_F(LifecycleTest, ClientDeathHangsUpOwnedTelephone) {
  FarEndParty* callee = board_->AddFarEnd("555-9999");
  callee->AnswerAfterRings(1);

  auto owner = Connect("phone-owner");
  ASSERT_NE(owner, nullptr);
  ResourceId loud = owner->CreateLoud(kNoResource, {});
  ResourceId telephone = owner->CreateDevice(loud, DeviceClass::kTelephone, {});
  owner->MapLoud(loud);
  owner->Enqueue(loud, {DialCommand(telephone, "555-9999", 1)});
  owner->StartQueue(loud);
  ASSERT_TRUE(owner->Sync().ok());

  PhoneLineUnit* line = board_->phone_lines()[0];
  // Line state is mutated under the big lock (engine tick and disconnect
  // reclamation both hold it), so observe it the same way.
  auto line_state = [&] {
    MutexLock lock(&server_->mutex());
    return line->line_state();
  };
  for (int i = 0; i < 600 && line_state() != LineState::kConnected; ++i) {
    StepMs(20);
  }
  ASSERT_EQ(line_state(), LineState::kConnected);

  // The owner dies mid-call. Disconnect reclamation must put the line
  // back on hook — a dead client cannot hold a phone call open.
  owner->Close();
  for (int i = 0; i < 200 && line_state() != LineState::kOnHook; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    StepMs(20);
  }
  EXPECT_EQ(line_state(), LineState::kOnHook);
}

TEST_F(LifecycleTest, RpcDeadlineSurfacesTimeout) {
  client_->set_rpc_deadline_ms(50);
  Result<ServerStatsReply> result = [&] {
    // Stall the dispatcher by holding the big lock across the round-trip;
    // the client-side deadline must fire instead of blocking forever.
    MutexLock lock(&server_->mutex());
    return client_->GetServerStats(false);
  }();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  // The connection itself is still healthy once the server catches up.
  client_->set_rpc_deadline_ms(0);
  EXPECT_TRUE(client_->Sync().ok());
}

TEST_F(LifecycleTest, ServerShutdownSurfacesConnectionError) {
  auto doomed = Connect("doomed");
  ASSERT_NE(doomed, nullptr);
  ASSERT_TRUE(doomed->Sync().ok());
  server_->Shutdown();
  // In-flight and future round-trips fail with kConnection, not a hang.
  Status status = doomed->Sync();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kConnection);
}

// -- Overload protection (DESIGN.md decision 15) ------------------------------

class OverloadTest : public ServerFixture {
 protected:
  // Stats fetches retry briefly: the fixture client shares the server's
  // rate limits, so a snapshot right after a flood may itself be refused.
  ServerStatsReply Stats() {
    Result<ServerStatsReply> stats = client_->GetServerStats(false);
    for (int i = 0; i < 100 && !stats.ok(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      stats = client_->GetServerStats(false);
    }
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? stats.value() : ServerStatsReply{};
  }
};

TEST_F(OverloadTest, AdmissionControlRejectsOverCap) {
  ServerOptions options;
  options.max_connections = 2;  // the fixture client plus one more
  Init(BoardConfig{}, options);
  auto second = Connect("second");
  ASSERT_NE(second, nullptr);
  ASSERT_TRUE(second->Sync().ok());
  // Over the cap the stream is closed before setup ever answers, so Open
  // fails cleanly — and the server keeps serving the admitted clients.
  EXPECT_EQ(Connect("third"), nullptr);
  EXPECT_TRUE(client_->Sync().ok());
  EXPECT_GE(Stats().admission_rejects, 1u);
  // A slot frees up when an admitted connection dies.
  second->Close();
  std::unique_ptr<AudioConnection> fourth;
  for (int i = 0; i < 500 && fourth == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    fourth = Connect("fourth");
  }
  ASSERT_NE(fourth, nullptr);
  EXPECT_TRUE(fourth->Sync().ok());
}

TEST_F(OverloadTest, SoftRateLimitRefusesWithoutDisconnecting) {
  ServerOptions options;
  options.limit_rps = 50;
  options.limit_rps_burst = 5;
  Init(BoardConfig{}, options);
  for (int i = 0; i < 200; ++i) {
    client_->NoOp();
  }
  // The bucket is long dry by the time the Sync frame is parsed, so even
  // the Sync is refused — on its own sequence, which still completes the
  // round trip: the soft policy never cuts the connection.
  Status dry = client_->Sync();
  ASSERT_FALSE(dry.ok());
  EXPECT_EQ(dry.code(), ErrorCode::kRateLimited);
  uint64_t refused = 0;
  AsyncError error;
  while (client_->NextError(&error)) {
    EXPECT_EQ(error.error.code, ErrorCode::kRateLimited);
    ++refused;
  }
  EXPECT_GT(refused, 100u);
  // Refill restores service on the same connection.
  Status after = dry;
  for (int i = 0; i < 200 && !after.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    after = client_->Sync();
  }
  EXPECT_TRUE(after.ok());
  EXPECT_GE(Stats().rate_limited, refused);
}

TEST_F(OverloadTest, HardRateLimitCutsTheFlooder) {
  ServerOptions options;
  options.limit_rps = 50;
  options.limit_rps_burst = 5;
  options.limit_policy = RateLimitPolicy::kHard;
  Init(BoardConfig{}, options);
  auto flooder = Connect("flooder");
  ASSERT_NE(flooder, nullptr);
  for (int i = 0; i < 200; ++i) {
    flooder->NoOp();
  }
  // The first over-limit frame cuts the connection; the round trip fails
  // with a transport error, not a protocol error.
  Status status = flooder->Sync();
  EXPECT_FALSE(status.ok());
  ServerStatsReply stats = Stats();
  EXPECT_GE(stats.rate_limit_disconnects, 1u);
  EXPECT_GE(stats.rate_limited, 1u);
  // The well-behaved fixture client rode it out.
  EXPECT_TRUE(client_->Sync().ok());
}

TEST_F(OverloadTest, DeviceQuotaDeniesCreationUntilAReleasedSlot) {
  ServerOptions options;
  options.quota_devices = 2;
  Init(BoardConfig{}, options);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId first = client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ExpectNoErrors();
  client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ExpectError(ErrorCode::kQuotaExceeded);
  // On-demand counting has nothing to unwind: destroying a device frees
  // its slot immediately.
  client_->DestroyDevice(first);
  client_->CreateDevice(loud, DeviceClass::kPlayer, {});
  ExpectNoErrors();
  EXPECT_GE(Stats().quota_denials, 1u);
}

TEST_F(OverloadTest, SoundByteQuotaChargesGrowthOnly) {
  ServerOptions options;
  options.quota_sound_bytes = 8192;
  Init(BoardConfig{}, options);
  ResourceId sound = client_->CreateSound({Encoding::kPcm16, 8000});
  std::vector<uint8_t> block(4096, 0x7F);
  client_->WriteSound(sound, 0, block);
  client_->WriteSound(sound, 4096, block);  // exactly at the quota
  ExpectNoErrors();
  // One byte of growth past the quota is refused...
  client_->WriteSound(sound, 8192, std::vector<uint8_t>(1, 0x00));
  ExpectError(ErrorCode::kQuotaExceeded);
  // ...but rewriting in place is free: the quota charges growth, not I/O.
  client_->WriteSound(sound, 0, block);
  ExpectNoErrors();
}

TEST_F(OverloadTest, PlayQuotaBoundsConcurrentlyRunningQueues) {
  ServerOptions options;
  options.quota_plays = 1;
  Init(BoardConfig{}, options);
  ResourceId first = client_->CreateLoud(kNoResource, {});
  ResourceId second = client_->CreateLoud(kNoResource, {});
  // A long delay keeps each queue running for as long as the test needs
  // (virtual time only moves when the test steps it).
  client_->Enqueue(first, {DelayCommand(60000), DelayEndCommand()});
  client_->Enqueue(second, {DelayCommand(60000), DelayEndCommand()});
  client_->StartQueue(first);
  ExpectNoErrors();
  client_->StartQueue(second);
  ExpectError(ErrorCode::kQuotaExceeded);
  // Stopping the running queue releases the play slot.
  client_->StopQueue(first);
  client_->StartQueue(second);
  ExpectNoErrors();
  EXPECT_GE(Stats().quota_denials, 1u);
}

TEST_F(OverloadTest, ReapDestroysFinishedConnections) {
  auto ephemeral = Connect("ephemeral");
  ASSERT_NE(ephemeral, nullptr);
  ASSERT_TRUE(ephemeral->Sync().ok());
  EXPECT_EQ(server_->connection_objects_for_test(), 2u);
  ephemeral->Close();
  // The reader notices EOF and finishes teardown asynchronously; the reap
  // (called ~1/s from the engine loop in a realtime server) then destroys
  // the carcass and joins its threads.
  size_t remaining = 2;
  for (int i = 0; i < 500 && remaining != 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server_->ReapFinishedConnections();
    remaining = server_->connection_objects_for_test();
  }
  EXPECT_EQ(remaining, 1u);
  EXPECT_TRUE(client_->Sync().ok());
}

TEST_F(OverloadTest, DrainHangsUpLinesAndRefusesNewClients) {
  FarEndParty* callee = board_->AddFarEnd("555-8888");
  callee->AnswerAfterRings(1);
  ResourceId loud = client_->CreateLoud(kNoResource, {});
  ResourceId telephone = client_->CreateDevice(loud, DeviceClass::kTelephone, {});
  client_->MapLoud(loud);
  client_->Enqueue(loud, {DialCommand(telephone, "555-8888", 1)});
  client_->StartQueue(loud);
  ASSERT_TRUE(client_->Sync().ok());

  PhoneLineUnit* line = board_->phone_lines()[0];
  auto line_state = [&] {
    MutexLock lock(&server_->mutex());
    return line->line_state();
  };
  for (int i = 0; i < 600 && line_state() != LineState::kConnected; ++i) {
    StepMs(20);
  }
  ASSERT_EQ(line_state(), LineState::kConnected);

  // SIGTERM path: in-flight work answers, egress flushes, the off-hook
  // line goes back on hook, and the server ends shut down.
  EXPECT_TRUE(server_->Drain(std::chrono::milliseconds(2000)));
  EXPECT_TRUE(server_->draining());
  EXPECT_EQ(line_state(), LineState::kOnHook);
  {
    MutexLock lock(&server_->mutex());
    ServerMetrics& metrics = server_->state().metrics();
    EXPECT_EQ(metrics.draining.value(), 1);
    EXPECT_EQ(metrics.drain_forced_closes.value(), 0u);
    EXPECT_GE(metrics.drain_duration_ms.value(), 0);
  }
  // The drained server refuses round trips like any shut-down server.
  EXPECT_FALSE(client_->Sync().ok());
}

TEST(ConnectRetryTest, GivesUpAfterConfiguredAttempts) {
  // Reserve an ephemeral port, then close the listener: connects now fail
  // fast with ECONNREFUSED.
  uint16_t dead_port;
  {
    SocketListener probe;
    ASSERT_TRUE(probe.Listen(0));
    dead_port = probe.port();
  }
  ConnectRetryOptions retry;
  retry.attempts = 3;
  retry.backoff_ms = 2;
  retry.max_backoff_ms = 4;
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", dead_port, "late", retry);
  EXPECT_EQ(conn, nullptr);
}

TEST(ConnectRetryTest, ConnectsOnceServerComesUp) {
  // Reserve a port, bring the server up on it only after a delay, and let
  // the retry loop ride out the refused connects in between.
  uint16_t port;
  {
    SocketListener probe;
    ASSERT_TRUE(probe.Listen(0));
    port = probe.port();
  }
  Board board{BoardConfig{}};
  AudioServer server(&board);
  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    server.ListenTcp(port);
    server.StartRealtime();
  });
  ConnectRetryOptions retry;
  retry.attempts = 50;
  retry.backoff_ms = 20;
  retry.max_backoff_ms = 40;
  auto conn = AudioConnection::OpenTcpRetry("127.0.0.1", port, "early-bird", retry);
  late_start.join();
  if (server.tcp_port() == 0) {
    GTEST_SKIP() << "reserved port was taken by another process";
  }
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->Sync().ok());
  conn.reset();
  server.Shutdown();
}

}  // namespace
}  // namespace aud
