// Speech-synthesis tests: letter-to-sound rules, exception lists, the
// formant vocal-tract model, and the TextToSpeech front door.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <sstream>

#include "src/synth/lts_rules.h"
#include "src/synth/phonemes.h"
#include "src/synth/synthesizer.h"

namespace aud {
namespace {

double Rms(std::span<const Sample> s) {
  if (s.empty()) {
    return 0;
  }
  double acc = 0;
  for (Sample v : s) {
    acc += (v / 32768.0) * (v / 32768.0);
  }
  return std::sqrt(acc / s.size());
}

TEST(PhonemeTest, InventoryHasVowelsAndConsonants) {
  EXPECT_GT(PhonemeInventory().size(), 35u);
  ASSERT_NE(FindPhoneme("AA"), nullptr);
  ASSERT_NE(FindPhoneme("S"), nullptr);
  ASSERT_NE(FindPhoneme("SIL"), nullptr);
  EXPECT_EQ(FindPhoneme("QQ"), nullptr);
}

TEST(PhonemeTest, VowelsAreVoicedWithFormants) {
  const Phoneme* aa = FindPhoneme("AA");
  EXPECT_EQ(aa->phonation, PhonationType::kVoiced);
  EXPECT_GT(aa->f1, 0);
  EXPECT_GT(aa->f2, aa->f1);
}

TEST(PhonemeTest, ParsePhonemeStringSkipsUnknown) {
  auto seq = ParsePhonemeString("HH AH XX L OW");
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0]->symbol, "HH");
  EXPECT_EQ(seq[3]->symbol, "OW");
}

TEST(PhonemeTest, ParseIsCaseInsensitive) {
  auto seq = ParsePhonemeString("hh ah");
  ASSERT_EQ(seq.size(), 2u);
}

class LtsWords : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(LtsWords, KnownWordsConvert) {
  LetterToSound lts;
  EXPECT_EQ(lts.ConvertWord(GetParam().first), GetParam().second);
}

// Spot checks on common words covered by the rule set.
INSTANTIATE_TEST_SUITE_P(
    Common, LtsWords,
    ::testing::Values(std::pair{"the", "DH AH"}, std::pair{"this", "DH IH S"},
                      std::pair{"you", "Y UW"}, std::pair{"one", "W AH N"},
                      std::pair{"cat", "K AE T"}, std::pair{"dog", "D AA G"},
                      std::pair{"yes", "Y EH S"}, std::pair{"no", "N OW"}));

TEST(LtsTest, EveryLetterProducesSomething) {
  // Property: any alphabetic word converts to a nonempty phoneme string of
  // known phonemes.
  LetterToSound lts;
  const char* words[] = {"audio",   "server",   "telephone", "message", "play",
                         "record",  "stop",     "answer",    "machine", "greeting",
                         "number",  "workstation", "sound",  "beep",    "queue"};
  for (const char* word : words) {
    std::string phonemes = lts.ConvertWord(word);
    EXPECT_FALSE(phonemes.empty()) << word;
    auto seq = ParsePhonemeString(phonemes);
    // Everything the rules emit must be in the inventory.
    std::istringstream stream(phonemes);
    std::string tok;
    size_t count = 0;
    while (stream >> tok) {
      ++count;
    }
    EXPECT_EQ(seq.size(), count) << word << " -> " << phonemes;
  }
}

TEST(LtsTest, SilentFinalE) {
  LetterToSound lts;
  std::string phonemes = lts.ConvertWord("make");
  // Must not end with an EH/IY vowel for the final e.
  EXPECT_EQ(phonemes.substr(phonemes.size() - 1), "K");
}

TEST(LtsTest, ExceptionOverridesRules) {
  LetterToSound lts;
  lts.AddException("schmandt", "SH M AE N T");
  EXPECT_EQ(lts.ConvertWord("Schmandt"), "SH M AE N T");
  EXPECT_EQ(lts.exception_count(), 1u);
  lts.ClearExceptions();
  EXPECT_NE(lts.ConvertWord("Schmandt"), "SH M AE N T");
}

TEST(LtsTest, DigitsSpeakAsWords) {
  LetterToSound lts;
  std::string phonemes = lts.ConvertText("42");
  EXPECT_NE(phonemes.find("F AO R"), std::string::npos);
  EXPECT_NE(phonemes.find("T UW"), std::string::npos);
}

TEST(LtsTest, PunctuationInsertsPauses) {
  LetterToSound lts;
  std::string phonemes = lts.ConvertText("yes, no.");
  EXPECT_NE(phonemes.find("SIL"), std::string::npos);
  EXPECT_NE(phonemes.find("PAU"), std::string::npos);
}

TEST(LtsTest, AllDigitsHavePhonemes) {
  for (char d = '0'; d <= '9'; ++d) {
    EXPECT_FALSE(DigitPhonemes(d).empty()) << d;
  }
  EXPECT_TRUE(DigitPhonemes('x').empty());
}

TEST(FormantTest, VowelProducesPeriodicAudio) {
  FormantSynthesizer synth(8000);
  std::vector<Sample> out;
  VoiceParameters params;
  synth.Render({FindPhoneme("AA")}, params, &out);
  EXPECT_GT(out.size(), 800u);  // >= 100 ms
  EXPECT_GT(Rms(out), 0.02);
}

TEST(FormantTest, SilenceRendersZero) {
  FormantSynthesizer synth(8000);
  std::vector<Sample> out;
  synth.Render({FindPhoneme("SIL")}, VoiceParameters{}, &out);
  for (Sample s : out) {
    ASSERT_EQ(s, 0);
  }
}

TEST(FormantTest, SpeakingRateScalesDuration) {
  FormantSynthesizer synth(8000);
  VoiceParameters slow;
  slow.speaking_rate = 0.5;
  VoiceParameters fast;
  fast.speaking_rate = 2.0;
  std::vector<Sample> slow_out;
  std::vector<Sample> fast_out;
  auto seq = ParsePhonemeString("AA IY UW");
  synth.Render(seq, slow, &slow_out);
  synth.Render(seq, fast, &fast_out);
  EXPECT_NEAR(static_cast<double>(slow_out.size()) / fast_out.size(), 4.0, 0.3);
}

TEST(FormantTest, VolumeScalesAmplitude) {
  FormantSynthesizer synth(8000);
  VoiceParameters loud;
  loud.volume = 0.9;
  VoiceParameters quiet;
  quiet.volume = 0.2;
  std::vector<Sample> loud_out;
  std::vector<Sample> quiet_out;
  synth.Render({FindPhoneme("AA")}, loud, &loud_out);
  synth.Render({FindPhoneme("AA")}, quiet, &quiet_out);
  EXPECT_GT(Rms(loud_out), 2.0 * Rms(quiet_out));
}

TEST(TextToSpeechTest, SynthesizesAudibleSpeech) {
  TextToSpeech tts(8000);
  auto audio = tts.Synthesize("please leave a message after the beep");
  EXPECT_GT(audio.size(), 8000u);  // > 1 s
  EXPECT_GT(Rms(audio), 0.01);
}

TEST(TextToSpeechTest, EmptyTextIsShort) {
  TextToSpeech tts(8000);
  auto audio = tts.Synthesize("");
  EXPECT_LT(audio.size(), 100u);
}

TEST(TextToSpeechTest, LanguageGate) {
  TextToSpeech tts(8000);
  EXPECT_TRUE(tts.SetLanguage("en-US"));
  EXPECT_FALSE(tts.SetLanguage("fr-FR"));
  EXPECT_EQ(tts.language(), "en-US");
}

TEST(TextToSpeechTest, ExceptionListChangesOutput) {
  TextToSpeech tts(8000);
  auto before = tts.Synthesize("DECtalk");
  tts.AddException("DECtalk", "D EH K T AO K");
  auto after = tts.Synthesize("DECtalk");
  EXPECT_NE(before.size(), after.size());
}

TEST(TextToSpeechTest, PitchParameterShiftsF0) {
  // Render a long vowel at two pitches; autocorrelation period differs.
  TextToSpeech tts(8000);
  tts.parameters().pitch_hz = 100.0;
  auto low = tts.SynthesizePhonemes("AA AA AA AA AA AA");
  tts.parameters().pitch_hz = 200.0;
  auto high = tts.SynthesizePhonemes("AA AA AA AA AA AA");

  auto dominant_period = [](const std::vector<Sample>& audio) {
    size_t best_lag = 20;
    double best = -1e18;
    for (size_t lag = 20; lag < 160; ++lag) {
      double acc = 0;
      for (size_t i = 800; i + lag < std::min<size_t>(audio.size(), 4000); ++i) {
        acc += static_cast<double>(audio[i]) * audio[i + lag];
      }
      if (acc > best) {
        best = acc;
        best_lag = lag;
      }
    }
    return best_lag;
  };
  size_t low_period = dominant_period(low);
  size_t high_period = dominant_period(high);
  EXPECT_NEAR(static_cast<double>(low_period), 80.0, 10.0);    // 8000/100
  EXPECT_NEAR(static_cast<double>(high_period), 40.0, 8.0);    // 8000/200
}

}  // namespace
}  // namespace aud
